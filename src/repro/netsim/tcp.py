"""TCP sender/receiver over simulated links.

Implements the transport behaviour the paper's goodput model assumes and the
paper's footnote 3 describes for the Linux kernel:

- **Slow start with byte-counted growth** — the cwnd grows by the number of
  bytes acknowledged (not the number of ACKs), while below ``ssthresh``.
- **Congestion avoidance** — ``cwnd += MSS * acked_bytes / cwnd`` per ACK.
- **Growth only when cwnd-limited** — a connection that is application
  limited does not inflate its window.
- **Fast retransmit** — three duplicate ACKs trigger retransmission and a
  window reduction (``ssthresh = max(flight/2, 2 MSS)``), NewReno-style
  recovery until the loss point is acknowledged.
- **RTO** — RFC 6298 timer from the smoothed-RTT estimator with exponential
  backoff; expiry collapses the window to one segment.
- **Delayed ACKs** — the receiver ACKs every second in-order segment or
  after a timeout (§3.2.5 discusses the measurement impact); out-of-order
  arrivals are ACKed immediately (dup ACKs). Delayed ACKs can be disabled,
  matching the paper's NS3 validation setup (footnote 7).

RTT samples follow Karn's algorithm (never sample retransmitted segments)
and feed the same :class:`~repro.core.minrtt.MinRttEstimator` the analysis
layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.minrtt import MinRttEstimator, SmoothedRttEstimator
from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.link import Link, Packet

__all__ = ["TcpConnection", "TcpParams", "TcpState"]


@dataclass(frozen=True)
class TcpParams:
    """Tunables for one connection.

    ``congestion_control`` names any algorithm registered with
    :func:`repro.netsim.congestion.register_congestion_control`. Built-ins:
    ``"reno"`` (byte-counted NewReno, the default and the behaviour the
    paper's footnote 3 describes), ``"cubic"`` (CUBIC with HyStart — the
    paper notes hybrid slow start as a real-world cause of early slow-start
    exit, §3.2.3), and ``"bbr"`` (a rate-based BBR-like model).
    """

    mss_bytes: int = 1500
    initial_cwnd_packets: int = 10
    initial_ssthresh_bytes: int = 1 << 30
    delayed_ack: bool = True
    delayed_ack_timeout: float = 0.040
    dupack_threshold: int = 3
    max_buffer_bytes: int = 1 << 30
    congestion_control: str = "reno"

    @property
    def initial_cwnd_bytes(self) -> int:
        return self.initial_cwnd_packets * self.mss_bytes


@dataclass
class _Segment:
    seq: int
    size: int
    sent_at: float
    retransmitted: bool = False


@dataclass
class TcpState:
    """Observable sender state (what instrumentation reads)."""

    cwnd_bytes: int = 0
    ssthresh_bytes: int = 0
    bytes_in_flight: int = 0
    snd_nxt: int = 0
    snd_una: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    delivered_bytes: int = 0


class _Receiver:
    """In-order reassembly plus (delayed) cumulative ACK generation."""

    def __init__(
        self,
        sim: Simulator,
        ack_link: Link,
        delayed_ack: bool,
        delayed_ack_timeout: float,
    ) -> None:
        self.sim = sim
        self.ack_link = ack_link
        self.delayed_ack = delayed_ack
        self.delayed_ack_timeout = delayed_ack_timeout
        self.rcv_next = 0
        self._out_of_order: Dict[int, int] = {}  # seq -> size
        self._unacked_segments = 0
        self._ack_timer: Optional[EventHandle] = None
        #: Called as ``callback(new_in_order_bytes, now)`` when the in-order
        #: delivery point advances — the "application read" hook that lets
        #: a proxy (PEP) relay bytes onward (§2.2.1).
        self.on_deliver: List[Callable[[int, float], None]] = []

    def on_data(self, packet: Packet) -> None:
        if packet.end_seq <= self.rcv_next:
            # Duplicate of already-received data: re-ACK immediately so the
            # sender's recovery can progress.
            self._send_ack()
            return
        if packet.seq > self.rcv_next:
            # Gap: buffer and send an immediate duplicate ACK.
            self._out_of_order[packet.seq] = max(
                self._out_of_order.get(packet.seq, 0), packet.payload_bytes
            )
            self._send_ack()
            return
        # In-order (possibly partially duplicate) delivery.
        before = self.rcv_next
        self.rcv_next = packet.end_seq
        self._drain_out_of_order()
        advanced = self.rcv_next - before
        if advanced > 0:
            for callback in self.on_deliver:
                callback(advanced, self.sim.now)
        if not self.delayed_ack:
            self._send_ack()
            return
        self._unacked_segments += 1
        if self._unacked_segments >= 2:
            self._send_ack()
        elif self._ack_timer is None:
            self._ack_timer = self.sim.schedule(
                self.delayed_ack_timeout, self._on_ack_timeout
            )

    def _drain_out_of_order(self) -> None:
        while self.rcv_next in self._out_of_order:
            size = self._out_of_order.pop(self.rcv_next)
            self.rcv_next += size

    def _on_ack_timeout(self) -> None:
        self._ack_timer = None
        if self._unacked_segments > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._unacked_segments = 0
        self.ack_link.send(
            Packet(seq=0, payload_bytes=0, ack_seq=self.rcv_next, sent_at=self.sim.now)
        )


class TcpConnection:
    """One TCP connection: sender on the near side, receiver on the far side.

    The application writes bytes with :meth:`write`; ``on_ack_progress``
    callbacks let instrumentation observe cumulative-ACK advancement with
    timestamps (that is how the load balancer captures the
    second-to-last-packet ACK time, §3.2.5).
    """

    def __init__(
        self,
        sim: Simulator,
        data_link: Link,
        ack_link: Link,
        params: TcpParams = TcpParams(),
    ) -> None:
        from repro.netsim.congestion import cc_for

        self.sim = sim
        self.params = params
        self.data_link = data_link
        self.ack_link = ack_link
        self.cc = cc_for(
            params.congestion_control,
            params.mss_bytes,
            params.initial_cwnd_bytes,
        )
        self.cc.ssthresh_bytes = params.initial_ssthresh_bytes
        self.state = TcpState(
            cwnd_bytes=params.initial_cwnd_bytes,
            ssthresh_bytes=params.initial_ssthresh_bytes,
        )
        self.min_rtt = MinRttEstimator()
        self.srtt = SmoothedRttEstimator()
        self._receiver = _Receiver(
            sim, ack_link, params.delayed_ack, params.delayed_ack_timeout
        )
        data_link.connect(self._receiver.on_data)
        ack_link.connect(self._on_ack)
        #: Receiver-side application-read hooks (see _Receiver.on_deliver).
        self.on_deliver = self._receiver.on_deliver

        self._send_buffer_end = 0          # bytes written by the app
        self._segments: List[_Segment] = []  # unacked segments, seq order
        self._dupacks = 0
        self._recovery_point: Optional[int] = None
        self._rto_timer: Optional[EventHandle] = None
        self._rto_backoff = 1.0
        self.on_ack_progress: List[Callable[[int, float], None]] = []
        #: Called as ``callback(seq, end_seq, now)`` on each segment's
        #: *first* transmission (not retransmissions).
        self.on_segment_sent: List[Callable[[int, int, float], None]] = []

    # ------------------------------------------------------------------ #
    # Application interface
    # ------------------------------------------------------------------ #
    def write(self, nbytes: int) -> Tuple[int, int]:
        """Append ``nbytes`` to the send stream.

        Returns the stream byte range ``(start, end)`` the write occupies,
        which instrumentation uses to delimit transactions.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        start = self._send_buffer_end
        self._send_buffer_end += nbytes
        self._try_send()
        return start, self._send_buffer_end

    @property
    def all_acked(self) -> bool:
        return self.state.snd_una >= self._send_buffer_end

    @property
    def next_write_seq(self) -> int:
        """Stream offset the next :meth:`write` will start at."""
        return self._send_buffer_end

    @property
    def bytes_unsent(self) -> int:
        return self._send_buffer_end - self.state.snd_nxt

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def _try_send(self) -> None:
        sent_any = False
        while self.bytes_unsent > 0:
            window = self.state.cwnd_bytes - self.state.bytes_in_flight
            if window < min(self.params.mss_bytes, self.bytes_unsent):
                break
            size = min(self.params.mss_bytes, self.bytes_unsent)
            seq = self.state.snd_nxt
            self._transmit(seq, size, retransmission=False)
            self.state.snd_nxt += size
            sent_any = True
        if sent_any and self._rto_timer is None:
            self._arm_rto()

    def _transmit(self, seq: int, size: int, retransmission: bool) -> None:
        now = self.sim.now
        if not retransmission:
            self._segments.append(_Segment(seq=seq, size=size, sent_at=now))
            self.state.bytes_in_flight += size
            for callback in self.on_segment_sent:
                callback(seq, seq + size, now)
        packet = Packet(
            seq=seq, payload_bytes=size, sent_at=now, retransmission=retransmission
        )
        self.data_link.send(packet)

    # ------------------------------------------------------------------ #
    # ACK processing
    # ------------------------------------------------------------------ #
    def _on_ack(self, packet: Packet) -> None:
        assert packet.ack_seq is not None
        ack = packet.ack_seq
        now = self.sim.now

        if ack <= self.state.snd_una:
            self._on_duplicate_ack()
            return

        newly_acked = ack - self.state.snd_una
        self.state.snd_una = ack
        self.state.delivered_bytes += newly_acked
        self._dupacks = 0

        # Retire covered segments; sample RTT from the newest fully-acked,
        # never-retransmitted segment (Karn's algorithm). The ambiguity rule
        # covers the whole cumulative jump: an ACK that also retires a
        # retransmitted segment was plausibly *triggered by* the
        # retransmission, so the never-retransmitted segments it covers
        # were only waiting behind the hole — their send-to-ack intervals
        # measure the stall, not the path, and must not be sampled (they
        # would inflate sRTT, and thus the RTO, by orders of magnitude
        # after a loss burst).
        rtt_sample: Optional[float] = None
        retired_retransmit = False
        remaining: List[_Segment] = []
        for segment in self._segments:
            if segment.seq + segment.size <= ack:
                self.state.bytes_in_flight -= segment.size
                if segment.retransmitted:
                    retired_retransmit = True
                else:
                    rtt_sample = now - segment.sent_at
            else:
                remaining.append(segment)
        self._segments = remaining
        if retired_retransmit:
            rtt_sample = None
        if rtt_sample is not None:
            self.min_rtt.update(now, rtt_sample)
            self.srtt.update(rtt_sample)
        self._rto_backoff = 1.0

        if self._recovery_point is not None:
            if ack >= self._recovery_point:
                # Recovery complete; deflate to ssthresh.
                self._recovery_point = None
                self.cc.cwnd_bytes = max(
                    self.cc.ssthresh_bytes, 2 * self.params.mss_bytes
                )
                self._sync_cc()
            else:
                # Partial ACK during recovery: retransmit the next hole.
                self._retransmit_first_unacked()
        else:
            self._grow_cwnd(newly_acked, rtt_sample)

        if self.all_acked and not self._segments:
            self._cancel_rto()
        else:
            self._arm_rto()

        for callback in self.on_ack_progress:
            callback(ack, now)
        self._try_send()

    def _sync_cc(self) -> None:
        """Mirror the congestion controller into the observable state."""
        self.state.cwnd_bytes = self.cc.cwnd_bytes
        self.state.ssthresh_bytes = self.cc.ssthresh_bytes

    def _grow_cwnd(self, acked_bytes: int, rtt_sample: Optional[float]) -> None:
        # Footnote 3: growth applies only when the connection is using its
        # window (cwnd-limited); the algorithm itself (Reno byte counting,
        # CUBIC+HyStart) lives in the congestion controller.
        limited = (
            self.state.bytes_in_flight + acked_bytes
        ) * 2 >= self.state.cwnd_bytes or self.bytes_unsent > 0
        if not limited:
            return
        # Sequence bounds let sequence-aware controllers (HyStart rounds,
        # delivery-rate rounds) delimit real round trips.
        self.cc.on_ack(
            acked_bytes,
            self.sim.now,
            rtt_sample,
            snd_una=self.state.snd_una,
            snd_nxt=self.state.snd_nxt,
        )
        self._sync_cc()

    def _on_duplicate_ack(self) -> None:
        self._dupacks += 1
        if self._recovery_point is not None:
            # Already recovering; each further dupack lets one more segment
            # out (simplified window inflation).
            self.cc.cwnd_bytes += self.params.mss_bytes
            self._sync_cc()
            self._try_send()
            return
        if self._dupacks >= self.params.dupack_threshold and self._segments:
            self.state.fast_retransmits += 1
            self.cc.on_loss(self.state.bytes_in_flight)
            self._sync_cc()
            self._recovery_point = self.state.snd_nxt
            self._retransmit_first_unacked()
            self._arm_rto()

    def _retransmit_first_unacked(self) -> None:
        hole = next(
            (s for s in self._segments if s.seq >= self.state.snd_una), None
        )
        target = hole or (self._segments[0] if self._segments else None)
        if target is None:
            return
        target.retransmitted = True
        target.sent_at = self.sim.now
        self.state.retransmits += 1
        self._transmit(target.seq, target.size, retransmission=True)

    # ------------------------------------------------------------------ #
    # RTO
    # ------------------------------------------------------------------ #
    def _arm_rto(self) -> None:
        self._cancel_rto()
        timeout = self.srtt.rto * self._rto_backoff
        self._rto_timer = self.sim.schedule(timeout, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.all_acked and not self._segments:
            return
        self.state.timeouts += 1
        self.cc.on_timeout(self.state.bytes_in_flight)
        self._sync_cc()
        # RTO recovery: everything outstanding is suspect. Keeping the
        # recovery point at snd_nxt makes each partial ACK retransmit the
        # next hole immediately (ACK-clocked go-back-N repair, as real RTO
        # slow start effectively does), instead of paying one full — and
        # backed-off — RTO per hole, which turns a loss burst into a
        # minutes-long serial stall.
        self._recovery_point = self.state.snd_nxt
        self._dupacks = 0
        self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        self._retransmit_first_unacked()
        self._arm_rto()
