"""Instrumented server endpoint over a simulated TCP connection.

Reproduces the load-balancer instrumentation contract of §2.2.2/§3.2.5 on
top of :class:`repro.netsim.tcp.TcpConnection`:

- per transaction, capture **Wnic** — the cwnd when the first response byte
  is written to the NIC (here: when the first segment of the transaction's
  byte range is transmitted);
- capture the NIC timestamp of that first transmission (``first_byte_time``);
- capture the time the cumulative ACK first covers the **second-to-last**
  packet of the transaction (the delayed-ACK correction: the last packet and
  its possibly-delayed ACK are excluded);
- capture bytes in flight when the transaction's first byte was sent;
- read MinRTT from the connection's kernel-style estimator at "session
  close".

The output is a list of :class:`repro.core.records.TransactionRecord` — the
exact input type of the analysis layer — so the packet simulator and the
synthetic workload generator feed identical downstream code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.records import TransactionRecord
from repro.netsim.engine import Simulator
from repro.netsim.tcp import TcpConnection

__all__ = ["InstrumentedServer", "TransferResult"]


@dataclass
class _PendingTransaction:
    start_seq: int
    end_seq: int
    response_bytes: int
    last_packet_bytes: int
    bytes_in_flight_at_start: int
    first_byte_time: Optional[float] = None
    last_byte_write_time: Optional[float] = None
    wnic_bytes: Optional[int] = None
    second_to_last_ack_time: Optional[float] = None
    final_ack_time: Optional[float] = None

    @property
    def measurement_seq(self) -> int:
        """Stream offset whose ACK closes the measured portion."""
        return self.end_seq - self.last_packet_bytes

    @property
    def complete(self) -> bool:
        return self.final_ack_time is not None


@dataclass
class TransferResult:
    """Everything a scenario needs to evaluate one connection's transfers.

    ``spans`` holds, per transaction, ``(first_byte_time, final_ack_time,
    response_bytes)`` — the *uncorrected* wall-clock view Figure 4 quotes —
    while ``records`` carry the delayed-ACK-corrected measurement view the
    estimator consumes.
    """

    records: List[TransactionRecord]
    spans: List[tuple]
    #: ``None`` when the connection produced no RTT sample at all — distinct
    #: from a genuine 0.0 measurement on a zero-propagation path.
    min_rtt_seconds: Optional[float]
    total_bytes: int
    completion_time: float
    retransmits: int
    timeouts: int

    def observed_goodput(self, index: int) -> float:
        """Wall-clock goodput (bytes/s) of transaction ``index``, first byte
        to final ACK — the quantity Figure 4 quotes."""
        first, final, nbytes = self.spans[index]
        return nbytes / (final - first)


class InstrumentedServer:
    """Drives transaction responses over a connection and records state."""

    def __init__(self, sim: Simulator, connection: TcpConnection) -> None:
        self.sim = sim
        self.connection = connection
        self._pending: List[_PendingTransaction] = []
        self._completed: List[_PendingTransaction] = []
        self._queue: List[int] = []
        self._waiting_for_idle: bool = False
        connection.on_segment_sent.append(self._on_segment_sent)
        connection.on_ack_progress.append(self._on_ack_progress)

    # ------------------------------------------------------------------ #
    # Driving transactions
    # ------------------------------------------------------------------ #
    def send_response(self, nbytes: int) -> None:
        """Write one response of ``nbytes`` to the connection now."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        in_flight = self.connection.state.bytes_in_flight
        mss = self.connection.params.mss_bytes
        last_packet = nbytes % mss or mss
        start = self.connection.next_write_seq
        # Register the transaction *before* writing: the first segments may
        # transmit synchronously inside write() and the Wnic capture hook
        # must already be watching the byte range.
        self._pending.append(
            _PendingTransaction(
                start_seq=start,
                end_seq=start + nbytes,
                response_bytes=nbytes,
                last_packet_bytes=last_packet,
                bytes_in_flight_at_start=in_flight,
            )
        )
        self.connection.write(nbytes)

    def send_after_ack(self, nbytes: int) -> None:
        """Queue a response to be written once the stream is fully ACKed.

        Models back-to-back request/response transactions where the client
        requests the next object after receiving the previous one.
        """
        self._queue.append(nbytes)
        self._maybe_dequeue()

    def _maybe_dequeue(self) -> None:
        if self._queue and self.connection.all_acked:
            nbytes = self._queue.pop(0)
            self.send_response(nbytes)

    # ------------------------------------------------------------------ #
    # Instrumentation hooks
    # ------------------------------------------------------------------ #
    def _on_segment_sent(self, seq: int, end: int, now: float) -> None:
        for txn in self._pending:
            if txn.first_byte_time is None and txn.start_seq <= seq < txn.end_seq:
                txn.first_byte_time = now
                txn.wnic_bytes = self.connection.state.cwnd_bytes
            if (
                txn.last_byte_write_time is None
                and seq < txn.end_seq <= end
            ):
                txn.last_byte_write_time = now

    def _on_ack_progress(self, ack: int, now: float) -> None:
        still_pending: List[_PendingTransaction] = []
        for txn in self._pending:
            if txn.second_to_last_ack_time is None and ack >= txn.measurement_seq:
                txn.second_to_last_ack_time = now
            if txn.final_ack_time is None and ack >= txn.end_seq:
                txn.final_ack_time = now
            if txn.complete:
                self._completed.append(txn)
            else:
                still_pending.append(txn)
        self._pending = still_pending
        self._maybe_dequeue()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def result(self) -> TransferResult:
        """Collect records once the simulation has drained."""
        finished = sorted(self._completed, key=lambda txn: txn.start_seq)
        records = []
        for txn in finished:
            if txn.first_byte_time is None or txn.wnic_bytes is None:
                continue
            # Single-packet responses have no second-to-last packet; their
            # measured portion is empty and the record is built so that
            # measured_bytes == 0 (the analysis skips them but still grows
            # the window chain).
            ack_time = txn.second_to_last_ack_time
            if txn.response_bytes <= txn.last_packet_bytes or ack_time is None:
                ack_time = txn.first_byte_time
                last = txn.response_bytes
            else:
                last = txn.last_packet_bytes
            last_write = txn.last_byte_write_time
            if last_write is not None and last_write < txn.first_byte_time:
                last_write = txn.first_byte_time
            records.append(
                TransactionRecord(
                    first_byte_time=txn.first_byte_time,
                    ack_time=max(ack_time, txn.first_byte_time),
                    response_bytes=txn.response_bytes,
                    last_packet_bytes=last,
                    cwnd_bytes_at_first_byte=txn.wnic_bytes,
                    bytes_in_flight_at_start=txn.bytes_in_flight_at_start,
                    last_byte_write_time=last_write,
                )
            )
        # Preserve "no sample" (None) as-is: consumers that need a number
        # must decide their own fallback, and 0.0 is a legitimate
        # measurement on zero-propagation paths (see validation's
        # effective_min_rtt).
        min_rtt = self.connection.min_rtt.at_termination(self.sim.now)
        completion = max((t.final_ack_time or 0.0 for t in finished), default=0.0)
        spans = [
            (txn.first_byte_time, txn.final_ack_time, txn.response_bytes)
            for txn in finished
            if txn.first_byte_time is not None and txn.final_ack_time is not None
        ]
        return TransferResult(
            records=records,
            spans=spans,
            min_rtt_seconds=min_rtt,
            total_bytes=sum(t.response_bytes for t in finished),
            completion_time=completion,
            retransmits=self.connection.state.retransmits,
            timeouts=self.connection.state.timeouts,
        )

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._queue)
