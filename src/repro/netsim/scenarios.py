"""Canned single-connection simulation scenarios.

- :func:`run_transfer` — the workhorse for validation (§3.2.3): one
  connection through a configurable bottleneck, one or more responses.
- :func:`run_figure4_scenario` — the paper's Figure-4 walkthrough: three
  request/response transactions of 2, 24, and 14 packets over one session
  with a 60 ms RTT and an initial window of 10 packets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.netsim.endpoints import InstrumentedServer, TransferResult
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.tcp import TcpConnection, TcpParams
from repro.obs.registry import active_metrics

__all__ = ["Figure4Result", "run_figure4_scenario", "run_transfer"]


def run_transfer(
    response_sizes: Sequence[int],
    bottleneck_mbps: Optional[float] = None,
    rtt_ms: float = 60.0,
    initial_cwnd_packets: int = 10,
    mss_bytes: int = 1500,
    loss_probability: float = 0.0,
    jitter_ms: float = 0.0,
    delayed_ack: bool = True,
    queue_packets: int = 1000,
    seed: int = 1,
    max_duration: float = 600.0,
    handshake_bytes: int = 120,
    congestion_control: str = "reno",
    ack_loss_probability: float = 0.0,
    ack_jitter_ms: float = 0.0,
    burst_loss_probability: float = 0.0,
    burst_length_packets: float = 4.0,
    zero_rtt_handshake: bool = False,
    independent_streams: bool = False,
    trace_sink: Optional[list] = None,
) -> TransferResult:
    """Simulate one connection serving ``response_sizes`` back to back.

    Each response after the first is written once the previous one is fully
    acknowledged (request/response alternation). ``bottleneck_mbps=None``
    models an unconstrained path where only propagation delay matters.

    ``handshake_bytes`` models the small TLS/HTTP exchange that precedes the
    first response. It matters for measurement fidelity: MinRTT samples from
    small packets carry negligible serialization delay, which is what lets
    production MinRTT approximate the propagation delay (paper footnote 5).
    Set to 0 to start cold.

    The reverse (ACK) path is ideal by default, matching the historical
    behaviour that kept the golden numbers stable; ``ack_loss_probability``
    and ``ack_jitter_ms`` impair it explicitly so lossy/mobile profiles can
    model ACK compression and dupack dynamics instead of silently getting a
    perfect return path. ``burst_loss_probability``/``burst_length_packets``
    enable Gilbert–Elliott burst loss on the forward path (LTE-like fades).

    The QUIC-ish toggles model protocol, not transport: with
    ``zero_rtt_handshake`` the first response rides with the handshake
    instead of waiting one RTT for its ACK (0-RTT resumption); with
    ``independent_streams`` every response is written immediately — streams
    coalesce on the wire rather than alternating request/response (and the
    handshake wait is moot, so it implies 0-RTT semantics).

    Pass a list as ``trace_sink`` to receive a
    :class:`~repro.netsim.trace.PacketTrace` capturing every wire event.
    """
    if not response_sizes:
        raise ValueError("need at least one response")
    sim = Simulator()
    rng = random.Random(seed)
    one_way = (rtt_ms / 1000.0) / 2.0
    data_link = Link(
        sim,
        rate_bps=None if bottleneck_mbps is None else bottleneck_mbps * 1e6,
        propagation_delay=one_way,
        queue_packets=queue_packets,
        loss_probability=loss_probability,
        jitter_seconds=jitter_ms / 1000.0,
        burst_loss_probability=burst_loss_probability,
        burst_length_packets=burst_length_packets,
        rng=rng,
    )
    ack_link = Link(
        sim,
        rate_bps=None,
        propagation_delay=one_way,
        loss_probability=ack_loss_probability,
        jitter_seconds=ack_jitter_ms / 1000.0,
        rng=rng,
    )
    if trace_sink is not None:
        from repro.netsim.trace import PacketTrace

        trace_sink.append(PacketTrace(data_link, ack_link))
    params = TcpParams(
        mss_bytes=mss_bytes,
        initial_cwnd_packets=initial_cwnd_packets,
        delayed_ack=delayed_ack,
        congestion_control=congestion_control,
    )
    connection = TcpConnection(sim, data_link, ack_link, params)
    server = InstrumentedServer(sim, connection)

    if handshake_bytes > 0:
        # Unregistered write: grows no transaction record, but seeds MinRTT
        # with a small-packet sample like a real handshake would.
        connection.write(handshake_bytes)
    if independent_streams:
        for size in response_sizes:
            server.send_response(size)
    elif handshake_bytes > 0 and not zero_rtt_handshake:
        for size in response_sizes:
            server.send_after_ack(size)
    else:
        server.send_response(response_sizes[0])
        for size in response_sizes[1:]:
            server.send_after_ack(size)
    sim.run(until=max_duration)
    result = server.result()
    metrics = active_metrics()
    if metrics is not None:
        prefix = f"netsim.cc.{congestion_control}"
        metrics.inc(f"{prefix}.transfers")
        metrics.inc(f"{prefix}.retransmits", result.retransmits)
        metrics.inc(f"{prefix}.timeouts", result.timeouts)
        cc = connection.cc
        for counter in (
            "hystart_exits",
            "hystart_rounds",
            "probe_rtt_entries",
            "loss_events",
        ):
            value = getattr(cc, counter, 0)
            if value:
                metrics.inc(f"{prefix}.{counter}", value)
    return result


@dataclass(frozen=True)
class Figure4Result:
    """Observed and model-side values for the Figure-4 walkthrough."""

    observed_goodputs_mbps: List[float]
    testable_goodputs_mbps: List[float]
    min_rtt_ms: float
    result: TransferResult


def run_figure4_scenario(
    delayed_ack: bool = False, congestion_control: str = "reno"
) -> Figure4Result:
    """Reproduce the paper's Figure-4 sequence end to end in the simulator.

    Three transactions of 2, 24, and 14 MSS over a 60 ms path with no
    bottleneck, icw 10. The paper's idealized sequence ignores delayed ACKs,
    so they default off here; the walkthrough benchmark also runs the
    delayed-ACK variant to show the correction's effect.
    """
    from repro.core.goodput import ideal_wstart, max_testable_goodput

    mss = 1500
    result = run_transfer(
        response_sizes=[2 * mss, 24 * mss, 14 * mss],
        bottleneck_mbps=None,
        rtt_ms=60.0,
        initial_cwnd_packets=10,
        delayed_ack=delayed_ack,
        congestion_control=congestion_control,
    )
    observed = [
        result.observed_goodput(i) * 8 / 1e6 for i in range(len(result.spans))
    ]
    # Model-side Gtestable with the chained ideal window.
    rtt = 0.060
    w1 = 10 * mss
    g1 = max_testable_goodput(2 * mss, w1, rtt)
    w2 = max(ideal_wstart(2 * mss, w1), 10 * mss)
    g2 = max_testable_goodput(24 * mss, w2, rtt)
    w3 = max(ideal_wstart(24 * mss, w2), 10 * mss)
    g3 = max_testable_goodput(14 * mss, w3, rtt)
    return Figure4Result(
        observed_goodputs_mbps=observed,
        testable_goodputs_mbps=[g * 8 / 1e6 for g in (g1, g2, g3)],
        min_rtt_ms=(result.min_rtt_seconds or 0.0) * 1000.0,
        result=result,
    )
