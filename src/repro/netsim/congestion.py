"""Pluggable congestion-control algorithms for the simulator.

The goodput model of §3.2 assumes idealized slow start; real connections run
Reno-style or CUBIC congestion control, and the paper explicitly notes that
transactions may "exit slow start early due to CUBIC's hybrid slow start"
(§3.2.3) — one of the real-world effects the Tmodel comparison must absorb.
To exercise that, the simulator supports:

- :class:`RenoControl` — byte-counted slow start + AIMD congestion
  avoidance (the behaviour footnote 3 describes for the Linux kernel);
- :class:`CubicControl` — CUBIC window growth (Ha, Rhee, Xu 2008) with
  **HyStart** (Ha & Rhee 2008): slow start exits early when ACK-train or
  RTT-delay signals detect the pipe filling, before any loss.

Both expose the same small interface consumed by
:class:`~repro.netsim.tcp.TcpConnection`:

``on_ack(acked_bytes, now, rtt_sample)`` → grow the window;
``on_loss(bytes_in_flight)`` → multiplicative decrease, returns new cwnd;
``on_timeout(bytes_in_flight)`` → collapse, returns new cwnd.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["CongestionControl", "RenoControl", "CubicControl"]


class CongestionControl:
    """Interface. ``cwnd_bytes`` is the controlled variable."""

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        self.mss = mss_bytes
        self.cwnd_bytes = initial_cwnd_bytes
        self.ssthresh_bytes = 1 << 30

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes

    def on_ack(self, acked_bytes: int, now: float, rtt_sample: Optional[float]) -> None:
        raise NotImplementedError

    def on_loss(self, bytes_in_flight: int) -> int:
        raise NotImplementedError

    def on_timeout(self, bytes_in_flight: int) -> int:
        raise NotImplementedError


class RenoControl(CongestionControl):
    """NewReno with byte-counted slow start (Linux's ABC behaviour)."""

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        super().__init__(mss_bytes, initial_cwnd_bytes)
        self._ca_accumulator = 0.0

    def on_ack(self, acked_bytes: int, now: float, rtt_sample: Optional[float]) -> None:
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            return
        self._ca_accumulator += self.mss * acked_bytes / self.cwnd_bytes
        whole = int(self._ca_accumulator)
        if whole:
            self.cwnd_bytes += whole
            self._ca_accumulator -= whole

    def on_loss(self, bytes_in_flight: int) -> int:
        flight = max(bytes_in_flight, self.mss)
        self.ssthresh_bytes = max(flight // 2, 2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        return self.cwnd_bytes

    def on_timeout(self, bytes_in_flight: int) -> int:
        self.ssthresh_bytes = max(bytes_in_flight // 2, 2 * self.mss)
        self.cwnd_bytes = self.mss
        return self.cwnd_bytes


class CubicControl(CongestionControl):
    """CUBIC window growth with HyStart slow-start exit.

    The cubic function ``W(t) = C (t - K)^3 + Wmax`` grows the window
    concavely toward the pre-loss maximum, plateaus, then probes convexly.
    HyStart watches RTT inflation during slow start: once the smallest RTT
    in the current round exceeds the previous round's by a threshold, the
    pipe is judged full and slow start ends without a loss.
    """

    C = 0.4           # cubic scaling constant (segments/sec^3)
    BETA = 0.7        # multiplicative decrease factor
    HYSTART_MIN_SAMPLES = 8
    HYSTART_ETA_MIN = 0.004   # 4 ms minimum RTT-inflation threshold
    HYSTART_ETA_MAX = 0.016

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        super().__init__(mss_bytes, initial_cwnd_bytes)
        self._w_max = 0.0          # segments
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        # HyStart round state.
        self._round_min_rtt = math.inf
        self._last_round_min_rtt = math.inf
        self._round_samples = 0
        self.hystart_exits = 0

    # ------------------------------------------------------------------ #
    def on_ack(self, acked_bytes: int, now: float, rtt_sample: Optional[float]) -> None:
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            if rtt_sample is not None:
                self._hystart_update(rtt_sample)
            return
        self._cubic_update(now, acked_bytes)

    def _hystart_update(self, rtt_sample: float) -> None:
        self._round_min_rtt = min(self._round_min_rtt, rtt_sample)
        self._round_samples += 1
        if self._round_samples < self.HYSTART_MIN_SAMPLES:
            return
        # Round complete: compare against the previous round.
        if math.isfinite(self._last_round_min_rtt):
            eta = min(
                max(self._last_round_min_rtt / 8.0, self.HYSTART_ETA_MIN),
                self.HYSTART_ETA_MAX,
            )
            if self._round_min_rtt >= self._last_round_min_rtt + eta:
                # Delay increase detected: exit slow start here.
                self.ssthresh_bytes = self.cwnd_bytes
                self.hystart_exits += 1
        self._last_round_min_rtt = self._round_min_rtt
        self._round_min_rtt = math.inf
        self._round_samples = 0

    def _cubic_update(self, now: float, acked_bytes: int) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            w_segments = self.cwnd_bytes / self.mss
            if self._w_max > w_segments:
                self._k = ((self._w_max - w_segments) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = w_segments
        t = now - self._epoch_start
        target_segments = self.C * (t - self._k) ** 3 + self._w_max
        target_bytes = max(int(target_segments * self.mss), 2 * self.mss)
        if target_bytes > self.cwnd_bytes:
            # Approach the cubic target proportionally to ACK arrival.
            step = max(
                (target_bytes - self.cwnd_bytes) * acked_bytes // self.cwnd_bytes,
                0,
            )
            self.cwnd_bytes += min(step, acked_bytes)
        # else: plateau (TCP-friendliness term omitted for clarity).

    # ------------------------------------------------------------------ #
    def on_loss(self, bytes_in_flight: int) -> int:
        self._w_max = self.cwnd_bytes / self.mss
        reduced = max(int(self.cwnd_bytes * self.BETA), 2 * self.mss)
        self.ssthresh_bytes = reduced
        self.cwnd_bytes = reduced
        self._epoch_start = None
        return self.cwnd_bytes

    def on_timeout(self, bytes_in_flight: int) -> int:
        self._w_max = self.cwnd_bytes / self.mss
        self.ssthresh_bytes = max(
            int(self.cwnd_bytes * self.BETA), 2 * self.mss
        )
        self.cwnd_bytes = self.mss
        self._epoch_start = None
        return self.cwnd_bytes
