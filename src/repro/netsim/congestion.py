"""Pluggable congestion-control algorithms for the simulator.

The goodput model of §3.2 assumes idealized slow start; real connections run
Reno-style, CUBIC, or rate-based congestion control, and the paper explicitly
notes that transactions may "exit slow start early due to CUBIC's hybrid slow
start" (§3.2.3) — one of the real-world effects the Tmodel comparison must
absorb. A real edge additionally serves rate-based senders (Dropbox moved its
edge to BBRv2 precisely because CUBIC's loss response distorts tail goodput)
and mobile paths where loss is not a congestion signal at all. To exercise
that diversity the simulator supports:

- :class:`RenoControl` — byte-counted slow start + AIMD congestion
  avoidance (the behaviour footnote 3 describes for the Linux kernel);
- :class:`CubicControl` — CUBIC window growth (Ha, Rhee, Xu 2008) with
  **HyStart** (Ha & Rhee 2008): slow start exits early when the RTT-delay
  signal detects the pipe filling, before any loss;
- :class:`BbrLikeControl` — a rate-based model in the BBR family (Cardwell
  et al. 2016): a windowed-max delivery-rate estimator and a min-RTT
  estimator set the operating point, a startup/drain/probe-bw gain cycle
  modulates the window around it, and loss is *not* a primary signal.

Controllers register by name (:func:`register_congestion_control`) and are
resolved by :func:`cc_for` — mirroring the executor registry in
:mod:`repro.pipeline.parallel` — so ``TcpParams(congestion_control=...)``
and the ``--cc`` CLI flag accept any registered name, and third parties can
plug in new models without touching :mod:`repro.netsim.tcp`. All registered
controllers are held to one contract by ``tests/test_cc_contract.py``.

Every controller exposes the same small interface consumed by
:class:`~repro.netsim.tcp.TcpConnection`:

``on_ack(acked_bytes, now, rtt_sample, snd_una=None, snd_nxt=None)`` → grow
(or retarget) the window; ``snd_una``/``snd_nxt`` let sequence-aware logic
(HyStart rounds, delivery-rate rounds) delimit real round trips;
``on_loss(bytes_in_flight)`` → loss response, returns new cwnd;
``on_timeout(bytes_in_flight)`` → collapse, returns new cwnd.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

__all__ = [
    "BbrLikeControl",
    "CongestionControl",
    "CubicControl",
    "RenoControl",
    "cc_for",
    "register_congestion_control",
    "registered_congestion_controls",
]


class CongestionControl:
    """Interface. ``cwnd_bytes`` is the controlled variable."""

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        self.mss = mss_bytes
        self.cwnd_bytes = initial_cwnd_bytes
        self.ssthresh_bytes = 1 << 30

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes

    def on_ack(
        self,
        acked_bytes: int,
        now: float,
        rtt_sample: Optional[float],
        snd_una: Optional[int] = None,
        snd_nxt: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    def on_loss(self, bytes_in_flight: int) -> int:
        raise NotImplementedError

    def on_timeout(self, bytes_in_flight: int) -> int:
        raise NotImplementedError


class RenoControl(CongestionControl):
    """NewReno with byte-counted slow start (Linux's ABC behaviour)."""

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        super().__init__(mss_bytes, initial_cwnd_bytes)
        self._ca_accumulator = 0.0

    def on_ack(
        self,
        acked_bytes: int,
        now: float,
        rtt_sample: Optional[float],
        snd_una: Optional[int] = None,
        snd_nxt: Optional[int] = None,
    ) -> None:
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            return
        self._ca_accumulator += self.mss * acked_bytes / self.cwnd_bytes
        whole = int(self._ca_accumulator)
        if whole:
            self.cwnd_bytes += whole
            self._ca_accumulator -= whole

    def on_loss(self, bytes_in_flight: int) -> int:
        flight = max(bytes_in_flight, self.mss)
        self.ssthresh_bytes = max(flight // 2, 2 * self.mss)
        self.cwnd_bytes = self.ssthresh_bytes
        return self.cwnd_bytes

    def on_timeout(self, bytes_in_flight: int) -> int:
        self.ssthresh_bytes = max(bytes_in_flight // 2, 2 * self.mss)
        self.cwnd_bytes = self.mss
        return self.cwnd_bytes


class CubicControl(CongestionControl):
    """CUBIC window growth with HyStart slow-start exit.

    The cubic function ``W(t) = C (t - K)^3 + Wmax`` grows the window
    concavely toward the pre-loss maximum, plateaus, then probes convexly.
    HyStart watches RTT inflation during slow start: once the smallest RTT
    in the current round exceeds the previous round's by a threshold, the
    pipe is judged full and slow start ends without a loss.

    A *round* is delimited by sequence, not by an ACK count: at round start
    the highest outstanding sequence (``snd_nxt``) is snapshotted, and the
    round ends when the cumulative ACK covers it — one window of ACKs is
    one round trip. (An earlier revision treated every
    ``HYSTART_MIN_SAMPLES`` ACKs as a round, so a large window completed
    several pseudo-rounds per RTT and ACK-batch variance *within* one RTT
    could exit slow start spuriously; ``HYSTART_MIN_SAMPLES`` is now only
    the validity threshold a round's RTT minimum needs before it may
    trigger an exit, as in the reference implementation.) When the caller
    does not supply sequence numbers (standalone unit use), the round
    length falls back to one cwnd of acknowledged bytes.
    """

    C = 0.4           # cubic scaling constant (segments/sec^3)
    BETA = 0.7        # multiplicative decrease factor
    HYSTART_MIN_SAMPLES = 8
    HYSTART_ETA_MIN = 0.004   # 4 ms minimum RTT-inflation threshold
    HYSTART_ETA_MAX = 0.016

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        super().__init__(mss_bytes, initial_cwnd_bytes)
        self._w_max = 0.0          # segments
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        # HyStart round state (sequence-delimited).
        self._delivered = 0
        self._round_end_seq: Optional[int] = None
        self._round_min_rtt = math.inf
        self._last_round_min_rtt = math.inf
        self._round_samples = 0
        self.hystart_rounds = 0
        self.hystart_exits = 0

    # ------------------------------------------------------------------ #
    def on_ack(
        self,
        acked_bytes: int,
        now: float,
        rtt_sample: Optional[float],
        snd_una: Optional[int] = None,
        snd_nxt: Optional[int] = None,
    ) -> None:
        self._delivered = (
            snd_una if snd_una is not None else self._delivered + acked_bytes
        )
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            self._hystart_update(rtt_sample, snd_nxt)
            return
        self._cubic_update(now, acked_bytes)

    def _hystart_update(
        self, rtt_sample: Optional[float], snd_nxt: Optional[int]
    ) -> None:
        if self._round_end_seq is None:
            # Round start: snapshot the highest sequence outstanding. The
            # round ends when the cumulative ACK covers it — exactly one
            # round trip later for a window-limited sender.
            self._round_end_seq = (
                snd_nxt
                if snd_nxt is not None
                else self._delivered + self.cwnd_bytes
            )
            self._round_min_rtt = math.inf
            self._round_samples = 0
        if rtt_sample is not None:
            self._round_min_rtt = min(self._round_min_rtt, rtt_sample)
            self._round_samples += 1
        if self._delivered < self._round_end_seq:
            return
        # Round complete: compare against the previous round.
        self.hystart_rounds += 1
        if (
            self._round_samples >= self.HYSTART_MIN_SAMPLES
            and math.isfinite(self._last_round_min_rtt)
        ):
            eta = min(
                max(self._last_round_min_rtt / 8.0, self.HYSTART_ETA_MIN),
                self.HYSTART_ETA_MAX,
            )
            if self._round_min_rtt >= self._last_round_min_rtt + eta:
                # Delay increase detected: exit slow start here.
                self.ssthresh_bytes = self.cwnd_bytes
                self.hystart_exits += 1
        if math.isfinite(self._round_min_rtt):
            self._last_round_min_rtt = self._round_min_rtt
        self._round_end_seq = None

    def _cubic_update(self, now: float, acked_bytes: int) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            w_segments = self.cwnd_bytes / self.mss
            if self._w_max > w_segments:
                self._k = ((self._w_max - w_segments) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = w_segments
        t = now - self._epoch_start
        target_segments = self.C * (t - self._k) ** 3 + self._w_max
        target_bytes = max(int(target_segments * self.mss), 2 * self.mss)
        if target_bytes > self.cwnd_bytes:
            # Approach the cubic target proportionally to ACK arrival.
            step = max(
                (target_bytes - self.cwnd_bytes) * acked_bytes // self.cwnd_bytes,
                0,
            )
            self.cwnd_bytes += min(step, acked_bytes)
        # else: plateau (TCP-friendliness term omitted for clarity).

    # ------------------------------------------------------------------ #
    def on_loss(self, bytes_in_flight: int) -> int:
        self._w_max = self.cwnd_bytes / self.mss
        reduced = max(int(self.cwnd_bytes * self.BETA), 2 * self.mss)
        self.ssthresh_bytes = reduced
        self.cwnd_bytes = reduced
        self._epoch_start = None
        return self.cwnd_bytes

    def on_timeout(self, bytes_in_flight: int) -> int:
        self._w_max = self.cwnd_bytes / self.mss
        self.ssthresh_bytes = max(
            int(self.cwnd_bytes * self.BETA), 2 * self.mss
        )
        self.cwnd_bytes = self.mss
        self._epoch_start = None
        return self.cwnd_bytes


class BbrLikeControl(CongestionControl):
    """Rate-based congestion control in the BBR family.

    The model keeps the two BBR state variables — **BtlBw**, a windowed
    maximum of per-round delivery-rate samples, and **RTprop**, the minimum
    observed RTT — and sets the window from their product (the BDP) through
    a phase gain:

    - **startup**: ACK-clocked exponential growth (byte-counted, so it
      never outruns the §3.2 model's idealized doubling) until the
      delivery rate stops growing ≥25% per round for three consecutive
      rounds (the pipe is full);
    - **drain**: one RTprop at a sub-unity gain to drain the startup queue;
    - **probe-bw**: an eight-phase gain cycle (1.25, 0.75, then six unity
      phases) that periodically probes for more bandwidth and then yields
      the induced queue back.

    **Min-RTT probing**: when RTprop has not been refreshed for
    ``MIN_RTT_WINDOW_SECONDS`` the window collapses to
    ``PROBE_RTT_CWND_PACKETS`` for ``PROBE_RTT_DURATION`` so the queue
    empties and the propagation delay can be re-measured.

    **Loss is not a primary signal**: :meth:`on_loss` sheds only the
    transient overshoot above the estimated BDP (and keeps ``ssthresh``
    coherent for the recovery bookkeeping in
    :class:`~repro.netsim.tcp.TcpConnection`); the operating point stays
    pinned to the measured rate, which is what makes this family hold
    goodput on lossy/mobile paths where loss-based senders collapse.

    This is deliberately a *model*, not the spec: the simulator's sender is
    window-clocked (no pacer), so pacing gains act on the window, and the
    bandwidth filter is per-round rather than per-packet.
    """

    STARTUP_FULL_THRESHOLD = 1.25   # bw must still grow 25%/round...
    STARTUP_FULL_ROUNDS = 3         # ...else the pipe is full after 3 rounds
    DRAIN_GAIN = 0.35               # ≈ 1 / startup's 2/ln2 pacing gain
    PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    BW_WINDOW_ROUNDS = 10           # max-filter depth for BtlBw
    MIN_RTT_WINDOW_SECONDS = 10.0   # RTprop staleness bound
    PROBE_RTT_CWND_PACKETS = 4
    PROBE_RTT_DURATION = 0.2

    def __init__(self, mss_bytes: int, initial_cwnd_bytes: int) -> None:
        super().__init__(mss_bytes, initial_cwnd_bytes)
        self.phase = "startup"
        self._min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0
        self._probe_rtt_until: Optional[float] = None
        self._phase_after_probe = "startup"
        # Delivery-rate estimator: per-round samples through a max filter.
        self._btl_bw = 0.0
        self._bw_window: Deque[Tuple[int, float]] = deque()
        self._round_count = 0
        self._delivered = 0
        self._round_end_seq: Optional[int] = None
        self._round_start_delivered = 0
        self._round_start_time: Optional[float] = None
        # Startup full-pipe detection.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        # Probe-bw gain cycling.
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._drain_until: Optional[float] = None
        # Observability.
        self.loss_events = 0
        self.probe_rtt_entries = 0

    # -- observable estimates ------------------------------------------ #
    @property
    def bottleneck_bw_bytes_per_sec(self) -> float:
        """Current BtlBw estimate (0.0 before the first full round)."""
        return self._btl_bw

    @property
    def min_rtt_estimate(self) -> Optional[float]:
        """Current RTprop estimate."""
        return self._min_rtt

    def _bdp_bytes(self) -> Optional[float]:
        if self._btl_bw <= 0.0 or not self._min_rtt:
            return None
        return self._btl_bw * self._min_rtt

    # ------------------------------------------------------------------ #
    def on_ack(
        self,
        acked_bytes: int,
        now: float,
        rtt_sample: Optional[float],
        snd_una: Optional[int] = None,
        snd_nxt: Optional[int] = None,
    ) -> None:
        self._delivered = (
            snd_una if snd_una is not None else self._delivered + acked_bytes
        )
        if rtt_sample is not None and (
            self._min_rtt is None or rtt_sample <= self._min_rtt
        ):
            self._min_rtt = rtt_sample
            self._min_rtt_stamp = now
        self._update_round(now, snd_nxt)
        self._advance_phase(now)
        self._retarget_cwnd(acked_bytes)

    def _update_round(self, now: float, snd_nxt: Optional[int]) -> None:
        if self._round_end_seq is None:
            self._round_end_seq = (
                snd_nxt
                if snd_nxt is not None
                else self._delivered + self.cwnd_bytes
            )
            self._round_start_delivered = self._delivered
            self._round_start_time = now
            return
        if self._delivered < self._round_end_seq:
            return
        # Round complete: one delivery-rate sample through the max filter.
        elapsed = now - (self._round_start_time or now)
        delivered = self._delivered - self._round_start_delivered
        self._round_count += 1
        if elapsed > 0.0 and delivered > 0:
            sample = delivered / elapsed
            self._bw_window.append((self._round_count, sample))
            horizon = self._round_count - self.BW_WINDOW_ROUNDS
            while self._bw_window and self._bw_window[0][0] <= horizon:
                self._bw_window.popleft()
            self._btl_bw = max(bw for _, bw in self._bw_window)
            if self.phase == "startup":
                if self._btl_bw >= self._full_bw * self.STARTUP_FULL_THRESHOLD:
                    self._full_bw = self._btl_bw
                    self._full_bw_rounds = 0
                else:
                    self._full_bw_rounds += 1
        self._round_end_seq = None

    def _advance_phase(self, now: float) -> None:
        if self._probe_rtt_until is not None:
            if now >= self._probe_rtt_until:
                self._probe_rtt_until = None
                self._min_rtt_stamp = now
                self.phase = self._phase_after_probe
                self._cycle_stamp = now
            return
        if (
            self._min_rtt is not None
            and now - self._min_rtt_stamp > self.MIN_RTT_WINDOW_SECONDS
        ):
            self._probe_rtt_until = now + self.PROBE_RTT_DURATION
            self._phase_after_probe = (
                "probe_bw" if self.phase != "startup" else "startup"
            )
            self.probe_rtt_entries += 1
            return
        if self.phase == "startup":
            if self._full_bw_rounds >= self.STARTUP_FULL_ROUNDS:
                self.phase = "drain"
                self._drain_until = now + (self._min_rtt or 0.0)
        elif self.phase == "drain":
            if self._drain_until is None or now >= self._drain_until:
                self.phase = "probe_bw"
                self._cycle_index = 0
                self._cycle_stamp = now
        else:  # probe_bw
            interval = self._min_rtt or self.PROBE_RTT_DURATION
            if now - self._cycle_stamp >= interval:
                self._cycle_index = (self._cycle_index + 1) % len(
                    self.PROBE_GAINS
                )
                self._cycle_stamp = now

    def _retarget_cwnd(self, acked_bytes: int) -> None:
        if self._probe_rtt_until is not None:
            self.cwnd_bytes = max(
                self.PROBE_RTT_CWND_PACKETS * self.mss, 2 * self.mss
            )
            return
        bdp = self._bdp_bytes()
        if self.phase == "startup":
            # ACK-clocked exponential growth; the rate estimator only
            # decides when to *leave* startup.
            self.cwnd_bytes += acked_bytes
            return
        if bdp is None:
            return
        gain = (
            self.DRAIN_GAIN
            if self.phase == "drain"
            else self.PROBE_GAINS[self._cycle_index]
        )
        self.cwnd_bytes = max(int(gain * bdp), 2 * self.mss)

    # ------------------------------------------------------------------ #
    def on_loss(self, bytes_in_flight: int) -> int:
        self.loss_events += 1
        flight = max(bytes_in_flight, 2 * self.mss)
        bdp = self._bdp_bytes()
        operating_point = max(flight, int(bdp) if bdp is not None else flight)
        # Rate-based response: shed only the overshoot above the operating
        # point; never a multiplicative decrease.
        self.cwnd_bytes = max(min(self.cwnd_bytes, operating_point), 2 * self.mss)
        self.ssthresh_bytes = min(
            self.ssthresh_bytes, max(self.cwnd_bytes, 2 * self.mss)
        )
        return self.cwnd_bytes

    def on_timeout(self, bytes_in_flight: int) -> int:
        self.loss_events += 1
        self.ssthresh_bytes = min(
            self.ssthresh_bytes, max(bytes_in_flight, 2 * self.mss)
        )
        # Collapse like any sender on RTO; the bandwidth filter survives,
        # so the window snaps back to the BDP once ACKs flow again.
        self.cwnd_bytes = self.mss
        return self.cwnd_bytes


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_CC_FACTORIES: Dict[str, Callable[[int, int], CongestionControl]] = {}


def register_congestion_control(
    name: str, factory: Callable[[int, int], CongestionControl]
) -> None:
    """Register (or replace) a congestion-control model under ``name``.

    ``factory`` takes ``(mss_bytes, initial_cwnd_bytes)`` and returns a
    :class:`CongestionControl`. Registered names are accepted by
    ``TcpParams(congestion_control=...)``, ``run_transfer``,
    ``run_validation_sweep`` and the ``--cc`` CLI flag. Names must be
    lowercase identifiers so they can mint ``netsim.cc.<name>.*`` metric
    names.
    """
    if not name or not name.replace("_", "").isalnum() or name != name.lower():
        raise ValueError(
            f"congestion-control name {name!r} must be a lowercase identifier"
        )
    _CC_FACTORIES[name] = factory


def registered_congestion_controls() -> Tuple[str, ...]:
    """All registered controller names, sorted."""
    return tuple(sorted(_CC_FACTORIES))


def cc_for(
    name: str, mss_bytes: int, initial_cwnd_bytes: int
) -> CongestionControl:
    """Build the controller registered under ``name``."""
    try:
        factory = _CC_FACTORIES[name]
    except KeyError:
        known = ", ".join(registered_congestion_controls())
        raise ValueError(
            f"unknown congestion control {name!r} (registered: {known})"
        ) from None
    return factory(mss_bytes, initial_cwnd_bytes)


register_congestion_control("reno", RenoControl)
register_congestion_control("cubic", CubicControl)
register_congestion_control("bbr", BbrLikeControl)
