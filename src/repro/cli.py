"""Command-line interface.

The subcommands mirror the library's main entry points:

- ``repro figure4`` — the paper's goodput walkthrough on the packet
  simulator;
- ``repro sweep`` — the §3.2.3 estimator-validation sweep;
- ``repro snapshot`` — generate a synthetic edge snapshot and print the §4
  global-performance report;
- ``repro routing`` — run the §6 preferred-vs-alternate audit (generated,
  or over a saved trace via ``--trace``);
- ``repro trace`` / ``repro analyze`` — export a synthetic trace and
  re-analyse it later; both formats (JSONL and the columnar store of
  :mod:`repro.store`) are supported, selected by path or ``--format``;
- ``repro ingest`` — stream a trace (or JSONL on stdin via ``-``) through
  watermarked incremental windows: sealed windows append to a ``--out``
  store and the §5 temporal classifier plus degradation alerts run online
  (DESIGN.md §11);
- ``repro convert`` — convert a trace between JSONL and the columnar
  store;
- ``repro verify-store`` — scan a columnar store for corruption
  (per-block checksums plus a full decode; exit 1 with ``CORRUPT:`` lines
  naming partition/column/offset when anything fails);
- ``repro serve`` — serve a columnar store over HTTP (DESIGN.md §12):
  ``/v1/quantiles``, ``/v1/degradation``, ``/v1/routing``, ``/v1/health``
  behind a hot-aggregation LRU cache that invalidates when a concurrent
  ``repro ingest`` appends windows to the same store;
- ``repro worker`` — run a shard-executing worker daemon
  (:mod:`repro.dist`); point a sharded subcommand at a fleet of these
  with ``--executor dispatch --workers-addr host:port,...`` to fan the
  analysis out across hosts (DESIGN.md §13);
- ``repro compact-store`` — merge a store's many small streamed
  partitions into few large ones (CRC re-verified, crash-safe
  manifest-last swap), keeping long-running ingest stores prunable.

Sharded subcommands (``snapshot``, ``routing``, ``analyze``) take the
fault policy flags ``--max-retries``, ``--retry-backoff``, and
``--strict``: by default a shard that keeps failing is quarantined and the
run completes degraded (with a ``WARNING: degraded run`` header and a
``degraded`` section in the manifest); ``--strict`` fails fast instead.

Every subcommand supports ``--metrics-out PATH`` (write a
:class:`repro.obs.RunManifest` JSON recording config, shard plan, stage
wall times, and the full sample-accounting counters) and ``--profile``
(print the per-stage wall-time table after the run).

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_observability_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--metrics-out", default=None, metavar="PATH", dest="metrics_out",
        help="write a JSON run manifest (metrics, stage timings, config)",
    )
    command.add_argument(
        "--profile", action="store_true",
        help="print a per-stage wall-time table after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Internet Performance from Facebook's Edge' "
            "(IMC 2019): server-side goodput estimation, MinRTT analytics, "
            "and routing-opportunity analysis over a synthetic global edge."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parallel_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers", type=int, default=1,
            help="worker-pool size for sharded ingestion (1 = serial)",
        )
        command.add_argument(
            "--shards", type=int, default=None,
            help="number of partitions (defaults to --workers)",
        )
        command.add_argument(
            "--executor",
            choices=("process", "thread", "serial", "dispatch"),
            default="process",
            help="worker pool kind for --workers > 1, or 'dispatch' to fan "
            "shards out over `repro worker` daemons (--workers-addr)",
        )
        command.add_argument(
            "--workers-addr", default=None, metavar="HOST:PORT,...",
            dest="workers_addr",
            help="comma-separated worker-daemon addresses for "
            "--executor dispatch",
        )
        command.add_argument(
            "--max-retries", type=int, default=2, dest="max_retries",
            metavar="N",
            help="re-run a failing shard up to N times before quarantining "
            "it (default 2)",
        )
        command.add_argument(
            "--retry-backoff", type=float, default=0.05, dest="retry_backoff",
            metavar="SECONDS",
            help="base delay between shard retries, doubled per attempt "
            "(default 0.05)",
        )
        command.add_argument(
            "--strict", action="store_true",
            help="fail fast on the first exhausted shard instead of "
            "quarantining it and completing degraded",
        )
        command.add_argument(
            "--engine", choices=("row", "batch"), default="batch",
            help="analysis engine: 'batch' runs the column kernels "
            "(default), 'row' the per-record oracle fold; outputs are "
            "byte-identical",
        )

    fig4 = sub.add_parser("figure4", help="run the Figure-4 goodput walkthrough")
    fig4.add_argument(
        "--delayed-ack", action="store_true", help="enable delayed ACKs"
    )
    fig4.add_argument(
        "--trace", action="store_true",
        help="print the packet-level sequence diagram",
    )
    fig4.add_argument(
        "--cc", dest="congestion_control", default="reno", metavar="NAME",
        help="congestion control: reno (default), cubic, bbr, or any "
        "registered name",
    )
    _add_observability_options(fig4)

    sweep = sub.add_parser("sweep", help="run the §3.2.3 validation sweep")
    sweep.add_argument(
        "--dense", action="store_true", help="use the dense, paper-shaped grid"
    )
    sweep.add_argument(
        "--cc", dest="congestion_control", default="reno", metavar="NAME",
        help="congestion control: reno (default), cubic, bbr, or any "
        "registered name",
    )
    _add_observability_options(sweep)

    snapshot = sub.add_parser("snapshot", help="generate + analyse a snapshot")
    snapshot.add_argument("--seed", type=int, default=42)
    snapshot.add_argument("--days", type=int, default=1)
    snapshot.add_argument(
        "--rate", type=float, default=10.0,
        help="base sessions per 15-minute window per network",
    )
    snapshot.add_argument(
        "--networks-per-metro", type=int, default=3, dest="networks_per_metro"
    )
    add_parallel_options(snapshot)
    _add_observability_options(snapshot)

    def add_format_option(command: argparse.ArgumentParser, what: str) -> None:
        command.add_argument(
            "--format", choices=("jsonl", "store"), default=None,
            dest="trace_format",
            help=f"trace format of {what} (default: auto-detect from the "
            "path — a *.store directory is a columnar store)",
        )

    routing = sub.add_parser("routing", help="run the §6 routing audit")
    routing.add_argument("--seed", type=int, default=42)
    routing.add_argument("--days", type=int, default=2)
    routing.add_argument("--rate", type=float, default=60.0)
    routing.add_argument(
        "--trace", default=None, metavar="PATH",
        help="audit a saved trace (JSONL or store) instead of generating "
        "a scenario; --seed/--rate are ignored",
    )
    add_format_option(routing, "--trace")
    add_parallel_options(routing)
    _add_observability_options(routing)

    trace = sub.add_parser(
        "trace", help="generate a synthetic trace file (JSONL or store)"
    )
    trace.add_argument("output", help="path (.jsonl, .jsonl.gz, or .store)")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--days", type=int, default=1)
    trace.add_argument("--rate", type=float, default=10.0)
    trace.add_argument(
        "--networks-per-metro", type=int, default=1, dest="networks_per_metro"
    )
    add_format_option(trace, "the output")
    _add_observability_options(trace)

    analyze = sub.add_parser(
        "analyze", help="run the global-performance report over a saved trace"
    )
    analyze.add_argument(
        "trace", help="trace produced by `repro trace` (JSONL or store)"
    )
    analyze.add_argument(
        "--windows", type=int, default=96,
        help="number of 15-minute windows the trace spans",
    )
    add_format_option(analyze, "the trace")
    add_parallel_options(analyze)
    _add_observability_options(analyze)

    ingest = sub.add_parser(
        "ingest",
        help="stream a trace through watermarked windows, sealing to a "
        "store and analyzing online",
    )
    ingest.add_argument(
        "trace",
        help="trace to stream (JSONL or store), or '-' for JSONL on stdin",
    )
    ingest.add_argument(
        "--windows", type=int, default=96,
        help="nominal number of 15-minute windows the study spans",
    )
    ingest.add_argument(
        "--lateness", type=float, default=None, metavar="SECONDS",
        dest="lateness",
        help="allowed event-time lateness before a window seals "
        "(default: two aggregation windows)",
    )
    ingest.add_argument(
        "--out", default=None, metavar="STORE", dest="out_store",
        help="append sealed windows to this *.store directory "
        "(created on first seal)",
    )
    ingest.add_argument(
        "--band-windows", type=int, default=None, dest="band_windows",
        metavar="N",
        help="aggregation windows per store partition band for --out",
    )
    _add_observability_options(ingest)

    convert = sub.add_parser(
        "convert",
        help="convert a trace between JSONL and the columnar store",
    )
    convert.add_argument("src", help="source trace (JSONL or store)")
    convert.add_argument(
        "dst", help="destination (a *.store directory or a JSONL path)"
    )
    convert.add_argument(
        "--band-windows", type=int, default=None, dest="band_windows",
        metavar="N",
        help="aggregation windows per store partition band (default 4 = "
        "one hour of 15-minute windows)",
    )
    convert.add_argument(
        "--no-compress", action="store_true", dest="no_compress",
        help="skip per-block deflate in the store output",
    )
    _add_observability_options(convert)

    verify = sub.add_parser(
        "verify-store",
        help="scan a columnar store for corruption (checksums + decode)",
    )
    verify.add_argument("store", help="trace-store directory to verify")
    _add_observability_options(verify)

    serve = sub.add_parser(
        "serve",
        help="serve a columnar store over HTTP with a hot-aggregation cache",
    )
    serve.add_argument("store", help="trace-store directory to serve")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8321,
        help="TCP port (0 picks a free port; default 8321)",
    )
    serve.add_argument(
        "--engine", choices=("row", "batch"), default="batch",
        help="dataset engine for unfiltered queries (outputs are "
        "byte-identical; filtered queries always run the pruned row fold)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=64, dest="cache_capacity",
        metavar="N",
        help="hot-aggregation LRU entries kept resident (default 64)",
    )
    serve.add_argument(
        "--windows", type=int, default=None,
        help="study windows for the analyze profile (default: derived "
        "from the store manifest's partition bands)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, dest="max_requests",
        metavar="N",
        help="exit after serving N responses (smoke tests / CI)",
    )
    _add_observability_options(serve)

    worker = sub.add_parser(
        "worker",
        help="run a shard-executing worker daemon for --executor dispatch",
    )
    worker.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (port 0 picks a free port; default loopback)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, dest="max_tasks", metavar="N",
        help="exit after executing N shard tasks (smoke tests / CI)",
    )
    _add_observability_options(worker)

    compact = sub.add_parser(
        "compact-store",
        help="merge a store's many small partitions into few large ones",
    )
    compact.add_argument("store", help="trace-store directory to compact")
    compact.add_argument(
        "--band-windows", type=int, default=None, dest="band_windows",
        metavar="N",
        help="aggregation windows per compacted partition band (default: "
        "the store's current banding)",
    )
    compact.add_argument(
        "--no-compress", action="store_true", dest="no_compress",
        help="skip per-block deflate in the rewritten partitions",
    )
    _add_observability_options(compact)

    calibrate = sub.add_parser(
        "calibrate",
        help="check the synthetic universe against the paper's anchors",
    )
    calibrate.add_argument("--seed", type=int, default=101)
    calibrate.add_argument("--rate", type=float, default=9.0)
    _add_observability_options(calibrate)
    return parser


def _print_degraded(dataset) -> None:
    """One-line degradation header for runs that quarantined shards."""
    if getattr(dataset, "degraded", None):
        print(f"WARNING: degraded run — {dataset.degraded.summary()}")


def _worker_addrs(args: argparse.Namespace) -> tuple:
    """The --workers-addr list as a tuple of host:port strings."""
    raw = getattr(args, "workers_addr", None)
    if not raw:
        return ()
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.core.hdratio import session_goodput
    from repro.netsim import run_figure4_scenario

    if args.trace:
        from repro.netsim.scenarios import run_transfer

        mss = 1500
        sink: list = []
        run_transfer(
            [2 * mss, 24 * mss, 14 * mss],
            rtt_ms=60.0,
            delayed_ack=args.delayed_ack,
            congestion_control=args.congestion_control,
            trace_sink=sink,
        )
        print(sink[0].render(max_events=120))
        print()

    result = run_figure4_scenario(
        delayed_ack=args.delayed_ack,
        congestion_control=args.congestion_control,
    )
    print(f"congestion control: {args.congestion_control}")
    print(f"MinRTT: {result.min_rtt_ms:.1f} ms")
    for index, (observed, testable) in enumerate(
        zip(result.observed_goodputs_mbps, result.testable_goodputs_mbps), 1
    ):
        print(
            f"txn{index}: observed {observed:.2f} Mbps, "
            f"max testable {testable:.2f} Mbps"
        )
    summary = session_goodput(result.result.records, result.result.min_rtt_seconds)
    print(
        f"session HDratio: {summary.hdratio} "
        f"({summary.achieved}/{summary.tested} tested transactions achieved HD)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.netsim import SweepConfig, run_validation_sweep

    if args.dense:
        config = SweepConfig(
            bottleneck_mbps=(0.5, 1.0, 1.5, 2.5, 3.5, 5.0),
            rtt_ms=(20.0, 40.0, 60.0, 100.0, 140.0, 200.0),
            initial_cwnd_packets=(1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50),
            transfer_packets=(1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 200, 350, 500),
        )
    else:
        config = SweepConfig()
    print(
        f"Sweeping {config.count} configurations "
        f"({args.congestion_control})…"
    )
    result = run_validation_sweep(
        config, congestion_control=args.congestion_control
    )
    testing = result.testing_points
    print(f"configurations able to test the bottleneck: {len(testing)}")
    print(f"overestimates: {len(result.overestimates)} (paper: 0)")
    for q in (50.0, 90.0, 99.0):
        print(
            f"relative error p{q:.0f}: "
            f"{result.relative_error_percentile(q):.4f}"
        )
    return 0 if not result.overestimates else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig6_global_performance
    from repro.pipeline.report import format_metric, format_percent, format_table
    from repro.workload import EdgeScenario, ScenarioConfig

    config = ScenarioConfig(
        seed=args.seed,
        days=args.days,
        networks_per_metro=args.networks_per_metro,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(
        f"Generating {args.days} day(s), {len(scenario.networks)} networks, "
        f"{len(scenario.pops)} PoPs…"
    )
    dataset = dataset_from_source(
        scenario.generate(),
        study_windows=config.total_windows,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        strict=args.strict,
        engine=args.engine,
        worker_addrs=_worker_addrs(args),
    )
    print(f"{dataset.session_count:,} sampled sessions")
    _print_degraded(dataset)

    result = fig6_global_performance(dataset)
    rows = []
    for code in ("AF", "AS", "SA", "EU", "NA", "OC"):
        if code not in result.minrtt_by_continent:
            continue
        hd = result.hdratio_by_continent[code]
        rows.append(
            (
                code,
                format_metric(result.continent_median_minrtt(code), ".0f", " ms"),
                format_percent(hd.fraction_at_most(0.0)),
            )
        )
    print(format_table(("continent", "MinRTT p50", "HDratio=0"), rows))
    print(
        f"global MinRTT p50 {format_metric(result.median_minrtt, '.0f', ' ms')}; "
        f"HDratio>0 {format_percent(result.hdratio_positive_fraction)}"
    )
    return 0


def _cmd_routing(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig9_opportunity
    from repro.pipeline.report import format_percent
    from repro.workload import EdgeScenario, ScenarioConfig

    if args.trace is not None:
        print(f"Auditing saved trace {args.trace}…")
        source = args.trace
    else:
        config = ScenarioConfig(
            seed=args.seed, days=args.days, base_sessions_per_window=args.rate
        )
        scenario = EdgeScenario(config)
        print(
            f"Measuring preferred + alternates for "
            f"{len(scenario.networks)} groups…"
        )
        source = scenario.generate()
    dataset = dataset_from_source(
        source,
        study_windows=args.days * 24,
        keep_response_sizes=False,
        window_seconds=3600.0,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        strict=args.strict,
        engine=args.engine,
        worker_addrs=_worker_addrs(args),
    )
    print(f"{dataset.session_count:,} sampled sessions")
    _print_degraded(dataset)

    result = fig9_opportunity(dataset)
    print(
        f"MinRTT_P50 within 3 ms of optimal: "
        f"{format_percent(result.minrtt_within_of_optimal(3.0))} (paper 83.9%)"
    )
    print(
        f"MinRTT_P50 improvable >= 5 ms (CI-gated): "
        f"{format_percent(result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True))}"
        f" (paper ~2.0%)"
    )
    print(
        f"HDratio_P50 improvable >= 0.05: "
        f"{format_percent(result.hdratio.traffic_fraction_at_least(0.05, use_ci_low=True))}"
        f" (paper ~0.2%)"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics
    from repro.pipeline.io import detect_format, write_samples
    from repro.store import write_store
    from repro.workload import EdgeScenario, ScenarioConfig

    config = ScenarioConfig(
        seed=args.seed,
        days=args.days,
        networks_per_metro=args.networks_per_metro,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(f"Generating {args.days} day(s) across {len(scenario.networks)} networks…")
    fmt = args.trace_format or detect_format(args.output)
    if fmt == "store":
        count = write_store(
            args.output, scenario.generate(), metrics=active_metrics()
        )
    else:
        count = write_samples(
            args.output, scenario.generate(), metrics=active_metrics()
        )
    print(f"wrote {count:,} samples to {args.output} ({fmt})")
    print(f"(the trace spans {config.total_windows} fifteen-minute windows)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics
    from repro.pipeline.io import convert, detect_format
    from repro.store import DEFAULT_BAND_WINDOWS

    band_windows = (
        args.band_windows
        if args.band_windows is not None
        else DEFAULT_BAND_WINDOWS
    )
    count = convert(
        args.src,
        args.dst,
        band_windows=band_windows,
        compress=not args.no_compress,
        metrics=active_metrics(),
    )
    print(
        f"converted {count:,} samples: {args.src} "
        f"({detect_format(args.src)}) -> {args.dst} "
        f"({detect_format(args.dst)})"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig6_global_performance
    from repro.pipeline.report import format_metric, format_percent

    dataset = dataset_from_source(
        args.trace,
        study_windows=args.windows,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        strict=args.strict,
        engine=args.engine,
        worker_addrs=_worker_addrs(args),
    )
    print(f"{dataset.session_count:,} sessions loaded from {args.trace}")
    _print_degraded(dataset)
    result = fig6_global_performance(dataset)
    print(f"global MinRTT p50: {format_metric(result.median_minrtt, '.1f', ' ms')}")
    print(f"global MinRTT p80: {format_metric(result.p80_minrtt, '.1f', ' ms')}")
    print(
        f"HD-testable sessions with HDratio > 0: "
        f"{format_percent(result.hdratio_positive_fraction)}"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics, merge_into_active
    from repro.pipeline.ingest import StreamingIngestor
    from repro.pipeline.io import read_samples, read_samples_stream

    ingestor = StreamingIngestor(
        study_windows=args.windows,
        out_store=args.out_store,
        band_windows=args.band_windows,
        metrics=active_metrics(),
        **(
            {"allowed_lateness_seconds": args.lateness}
            if args.lateness is not None
            else {}
        ),
    )
    if args.trace == "-":
        print("streaming JSONL samples from stdin…")
        samples = read_samples_stream(sys.stdin, metrics=active_metrics())
    else:
        print(f"streaming saved trace {args.trace}…")
        samples = read_samples(args.trace, metrics=active_metrics())
    result = ingestor.offer_all(samples).finish()
    merge_into_active(result.dataset.metrics)

    print(
        f"{result.samples_offered:,} samples offered; "
        f"{result.samples_sealed:,} sealed across "
        f"{result.windows_sealed} window(s) "
        f"({result.windows_empty} empty); "
        f"{result.late.count} late sample(s) ledgered"
    )
    if args.out_store:
        print(f"sealed windows appended to {args.out_store}")
    print(
        f"{result.dataset.session_count:,} sessions kept; "
        f"{len(result.alerts)} degradation alert(s)"
    )
    for alert in result.alerts[:10]:
        print(
            f"ALERT: {alert.group.pop}/{alert.group.prefix}/"
            f"{alert.group.country} window {alert.window} {alert.metric} "
            f"+{alert.difference:.2f} (ci_low {alert.ci_low:.2f})"
        )
    if len(result.alerts) > 10:
        print(f"… and {len(result.alerts) - 10} more")
    counts = result.class_counts()
    if counts:
        summary = ", ".join(
            f"{label}: {count}" for label, count in sorted(counts.items())
        )
        print(f"temporal classes so far — {summary}")
    return 0


def _cmd_verify_store(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics
    from repro.store import verify_store

    report = verify_store(args.store, metrics=active_metrics())
    if report.ok:
        print(
            f"{args.store}: OK "
            f"({report.partitions_total} partition(s) verified)"
        )
        return 0
    for finding in report.findings:
        print(f"CORRUPT: {finding.describe()}")
    print(
        f"{args.store}: {len(report.findings)} finding(s) across "
        f"{report.partitions_corrupt} corrupt partition(s) of "
        f"{report.partitions_total}"
    )
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics
    from repro.serve import make_server

    server = make_server(
        args.store,
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
        engine=args.engine,
        cache_capacity=args.cache_capacity,
        study_windows=args.windows,
        metrics=active_metrics(),
    )
    host, port = server.server_address[:2]
    engine = server.engine
    # Flushed eagerly so a wrapping process (tests, scripts) can read the
    # bound port before the first request arrives.
    print(
        f"serving {args.store} on http://{host}:{port} "
        f"({engine.study_windows} windows × {engine.window_seconds:.0f}s, "
        f"engine={engine.engine}, cache={engine.cache.capacity})",
        flush=True,
    )
    print(
        "endpoints: /v1/quantiles /v1/degradation /v1/routing /v1/health",
        flush=True,
    )
    if args.max_requests is not None:
        print(f"(exiting after {args.max_requests} response(s))", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    cache = engine.cache
    print(
        f"served {engine.metrics.counter('serve.requests')} request(s); "
        f"cache {cache.hits} hit(s) / {cache.misses} miss(es) / "
        f"{cache.evictions} eviction(s)"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist import WorkerDaemon

    # Unlike client addresses, a listen address may use port 0 (bind to
    # any free port), so this is parsed locally rather than via parse_addr.
    host, sep, port_text = args.listen.rpartition(":")
    if not sep:
        host, port_text = args.listen, "0"
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--listen {args.listen!r} has a non-numeric port")
    daemon = WorkerDaemon(host=host, port=port, max_tasks=args.max_tasks)
    daemon.start()
    # Flushed eagerly so a wrapping process (tests, scripts) can read the
    # bound port before the first task arrives.
    print(f"worker daemon listening on {daemon.address}", flush=True)
    if args.max_tasks is not None:
        print(f"(exiting after {args.max_tasks} task(s))", flush=True)
    daemon.serve_forever()
    print(f"worker daemon served {daemon.tasks_served} task(s)")
    return 0


def _cmd_compact_store(args: argparse.Namespace) -> int:
    from repro.obs import active_metrics
    from repro.store import compact_store

    report = compact_store(
        args.store,
        band_windows=args.band_windows,
        compress=not args.no_compress,
        metrics=active_metrics(),
    )
    if report.skipped:
        print(
            f"{args.store}: already compact "
            f"({report.partitions_before} partition(s)); nothing to do"
        )
        return 0
    print(
        f"compacted {args.store}: {report.partitions_before} -> "
        f"{report.partitions_after} partition(s), "
        f"{report.bytes_before:,} -> {report.bytes_after:,} data bytes "
        f"({report.rows:,} rows re-verified)"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.obs import merge_into_active
    from repro.pipeline import StudyDataset
    from repro.workload import EdgeScenario, ScenarioConfig
    from repro.workload.calibration import render_report, run_calibration

    config = ScenarioConfig(
        seed=args.seed,
        days=1,
        networks_per_metro=3,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(f"Generating calibration snapshot ({len(scenario.networks)} networks)…")
    dataset = StudyDataset(study_windows=config.total_windows)
    dataset.ingest(scenario.generate())
    merge_into_active(dataset.metrics)
    results = run_calibration(dataset)
    print(render_report(results))
    return 0 if all(result.passed for result in results) else 1


_COMMANDS = {
    "figure4": _cmd_figure4,
    "sweep": _cmd_sweep,
    "snapshot": _cmd_snapshot,
    "routing": _cmd_routing,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "ingest": _cmd_ingest,
    "convert": _cmd_convert,
    "verify-store": _cmd_verify_store,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "compact-store": _cmd_compact_store,
    "calibrate": _cmd_calibrate,
}


def _validate_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject option combinations that would otherwise be silently ignored."""
    workers = getattr(args, "workers", None)
    shards = getattr(args, "shards", None)
    executor = getattr(args, "executor", None)
    addrs = getattr(args, "workers_addr", None)
    if (
        shards is not None
        and executor != "dispatch"
        and (workers is None or workers <= 1)
    ):
        parser.error(
            f"--shards {shards} has no effect without --workers > 1; "
            "pass --workers N (or drop --shards) to run sharded"
        )
    if executor == "dispatch" and not addrs:
        parser.error(
            "--executor dispatch requires --workers-addr HOST:PORT,..."
        )
    if addrs and executor != "dispatch":
        parser.error(
            "--workers-addr is only meaningful with --executor dispatch"
        )
    fmt = getattr(args, "trace_format", None)
    if fmt is not None:
        from repro.pipeline.io import detect_format

        if args.command == "trace":
            trace_path = args.output
        else:  # analyze / routing: --format asserts the input's format
            trace_path = getattr(args, "trace", None)
            if trace_path is None:
                parser.error("--format requires --trace PATH")
        detected = detect_format(trace_path)
        if detected != fmt:
            parser.error(
                f"--format {fmt} does not match {trace_path} (which is "
                f"{detected}); a columnar store is a *.store directory"
            )


def _shard_plan(args: argparse.Namespace) -> dict:
    """Describe the partitioning this invocation asked for (execution facts)."""
    if not hasattr(args, "workers"):
        return {}
    addrs = _worker_addrs(args)
    if args.shards is not None:
        shards = args.shards
    elif args.executor == "dispatch":
        shards = max(args.workers, len(addrs))
    else:
        shards = args.workers
    plan = {
        "workers": args.workers,
        "shards": shards,
        "executor": args.executor,
        "max_retries": args.max_retries,
        "retry_backoff": args.retry_backoff,
        "strict": args.strict,
    }
    if addrs:
        plan["worker_addrs"] = list(addrs)
    return plan


def _manifest_config(args: argparse.Namespace) -> dict:
    """The invocation's config: every CLI option except the obs plumbing."""
    config = dict(vars(args))
    for key in ("command", "metrics_out", "profile"):
        config.pop(key, None)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script; returns the exit code.

    Every subcommand runs under an activated metrics registry and tracer;
    ``--profile`` prints the stage-time table and ``--metrics-out`` writes
    the :class:`repro.obs.RunManifest` after the command returns.
    """
    from repro.obs import (
        MetricsRegistry,
        RunManifest,
        Tracer,
        activate_metrics,
        activate_tracer,
        span,
    )
    from repro.pipeline.report import format_table

    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)

    registry = MetricsRegistry()
    tracer = Tracer(metrics=registry)
    with activate_metrics(registry), activate_tracer(tracer):
        # Metric names reject hyphens, and the tracer mints a
        # "stage.cli.<command>" timer from this span's path.
        with span(f"cli.{args.command.replace('-', '_')}"):
            code = _COMMANDS[args.command](args)

    if args.profile:
        rows = [
            (row["stage"], row["calls"], f"{row['wall_seconds']:.3f}")
            for row in tracer.stage_table()
        ]
        print()
        print(format_table(("stage", "calls", "wall s"), rows, title="profile"))
    if args.metrics_out:
        manifest = RunManifest.collect(
            command=args.command,
            config=_manifest_config(args),
            registry=registry,
            tracer=tracer,
            shard_plan=_shard_plan(args),
            exit_code=code,
        )
        manifest.write(args.metrics_out)
        print(f"wrote run manifest to {args.metrics_out}")
    return code


if __name__ == "__main__":
    sys.exit(main())
