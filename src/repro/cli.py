"""Command-line interface.

Four subcommands mirror the library's main entry points:

- ``repro figure4`` — the paper's goodput walkthrough on the packet
  simulator;
- ``repro sweep`` — the §3.2.3 estimator-validation sweep;
- ``repro snapshot`` — generate a synthetic edge snapshot and print the §4
  global-performance report;
- ``repro routing`` — run the §6 preferred-vs-alternate audit.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Internet Performance from Facebook's Edge' "
            "(IMC 2019): server-side goodput estimation, MinRTT analytics, "
            "and routing-opportunity analysis over a synthetic global edge."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parallel_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers", type=int, default=1,
            help="worker-pool size for sharded ingestion (1 = serial)",
        )
        command.add_argument(
            "--shards", type=int, default=None,
            help="number of partitions (defaults to --workers)",
        )
        command.add_argument(
            "--executor", choices=("process", "thread", "serial"),
            default="process",
            help="worker pool kind for --workers > 1",
        )

    fig4 = sub.add_parser("figure4", help="run the Figure-4 goodput walkthrough")
    fig4.add_argument(
        "--delayed-ack", action="store_true", help="enable delayed ACKs"
    )
    fig4.add_argument(
        "--trace", action="store_true",
        help="print the packet-level sequence diagram",
    )

    sweep = sub.add_parser("sweep", help="run the §3.2.3 validation sweep")
    sweep.add_argument(
        "--dense", action="store_true", help="use the dense, paper-shaped grid"
    )

    snapshot = sub.add_parser("snapshot", help="generate + analyse a snapshot")
    snapshot.add_argument("--seed", type=int, default=42)
    snapshot.add_argument("--days", type=int, default=1)
    snapshot.add_argument(
        "--rate", type=float, default=10.0,
        help="base sessions per 15-minute window per network",
    )
    snapshot.add_argument(
        "--networks-per-metro", type=int, default=3, dest="networks_per_metro"
    )
    add_parallel_options(snapshot)

    routing = sub.add_parser("routing", help="run the §6 routing audit")
    routing.add_argument("--seed", type=int, default=42)
    routing.add_argument("--days", type=int, default=2)
    routing.add_argument("--rate", type=float, default=60.0)
    add_parallel_options(routing)

    trace = sub.add_parser(
        "trace", help="generate a synthetic trace to a JSONL file"
    )
    trace.add_argument("output", help="path (.jsonl or .jsonl.gz)")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--days", type=int, default=1)
    trace.add_argument("--rate", type=float, default=10.0)
    trace.add_argument(
        "--networks-per-metro", type=int, default=1, dest="networks_per_metro"
    )

    analyze = sub.add_parser(
        "analyze", help="run the global-performance report over a saved trace"
    )
    analyze.add_argument("trace", help="JSONL trace produced by `repro trace`")
    analyze.add_argument(
        "--windows", type=int, default=96,
        help="number of 15-minute windows the trace spans",
    )
    add_parallel_options(analyze)

    calibrate = sub.add_parser(
        "calibrate",
        help="check the synthetic universe against the paper's anchors",
    )
    calibrate.add_argument("--seed", type=int, default=101)
    calibrate.add_argument("--rate", type=float, default=9.0)
    return parser


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.core.hdratio import session_goodput
    from repro.netsim import run_figure4_scenario

    if args.trace:
        from repro.netsim.scenarios import run_transfer

        mss = 1500
        sink: list = []
        run_transfer(
            [2 * mss, 24 * mss, 14 * mss],
            rtt_ms=60.0,
            delayed_ack=args.delayed_ack,
            trace_sink=sink,
        )
        print(sink[0].render(max_events=120))
        print()

    result = run_figure4_scenario(delayed_ack=args.delayed_ack)
    print(f"MinRTT: {result.min_rtt_ms:.1f} ms")
    for index, (observed, testable) in enumerate(
        zip(result.observed_goodputs_mbps, result.testable_goodputs_mbps), 1
    ):
        print(
            f"txn{index}: observed {observed:.2f} Mbps, "
            f"max testable {testable:.2f} Mbps"
        )
    summary = session_goodput(result.result.records, result.result.min_rtt_seconds)
    print(
        f"session HDratio: {summary.hdratio} "
        f"({summary.achieved}/{summary.tested} tested transactions achieved HD)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.netsim import SweepConfig, run_validation_sweep

    if args.dense:
        config = SweepConfig(
            bottleneck_mbps=(0.5, 1.0, 1.5, 2.5, 3.5, 5.0),
            rtt_ms=(20.0, 40.0, 60.0, 100.0, 140.0, 200.0),
            initial_cwnd_packets=(1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50),
            transfer_packets=(1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 200, 350, 500),
        )
    else:
        config = SweepConfig()
    print(f"Sweeping {config.count} configurations…")
    result = run_validation_sweep(config)
    testing = result.testing_points
    print(f"configurations able to test the bottleneck: {len(testing)}")
    print(f"overestimates: {len(result.overestimates)} (paper: 0)")
    for q in (50.0, 90.0, 99.0):
        print(
            f"relative error p{q:.0f}: "
            f"{result.relative_error_percentile(q):.4f}"
        )
    return 0 if not result.overestimates else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig6_global_performance
    from repro.pipeline.report import format_percent, format_table
    from repro.workload import EdgeScenario, ScenarioConfig

    config = ScenarioConfig(
        seed=args.seed,
        days=args.days,
        networks_per_metro=args.networks_per_metro,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(
        f"Generating {args.days} day(s), {len(scenario.networks)} networks, "
        f"{len(scenario.pops)} PoPs…"
    )
    dataset = dataset_from_source(
        scenario.generate(),
        study_windows=config.total_windows,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
    )
    print(f"{dataset.session_count:,} sampled sessions")

    result = fig6_global_performance(dataset)
    rows = []
    for code in ("AF", "AS", "SA", "EU", "NA", "OC"):
        if code not in result.minrtt_by_continent:
            continue
        hd = result.hdratio_by_continent[code]
        rows.append(
            (
                code,
                f"{result.continent_median_minrtt(code):.0f} ms",
                format_percent(hd.fraction_at_most(0.0)),
            )
        )
    print(format_table(("continent", "MinRTT p50", "HDratio=0"), rows))
    print(
        f"global MinRTT p50 {result.median_minrtt:.0f} ms; "
        f"HDratio>0 {format_percent(result.hdratio_positive_fraction)}"
    )
    return 0


def _cmd_routing(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig9_opportunity
    from repro.pipeline.report import format_percent
    from repro.workload import EdgeScenario, ScenarioConfig

    config = ScenarioConfig(
        seed=args.seed, days=args.days, base_sessions_per_window=args.rate
    )
    scenario = EdgeScenario(config)
    print(f"Measuring preferred + alternates for {len(scenario.networks)} groups…")
    dataset = dataset_from_source(
        scenario.generate(),
        study_windows=args.days * 24,
        keep_response_sizes=False,
        window_seconds=3600.0,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
    )
    print(f"{dataset.session_count:,} sampled sessions")

    result = fig9_opportunity(dataset)
    print(
        f"MinRTT_P50 within 3 ms of optimal: "
        f"{format_percent(result.minrtt_within_of_optimal(3.0))} (paper 83.9%)"
    )
    print(
        f"MinRTT_P50 improvable >= 5 ms (CI-gated): "
        f"{format_percent(result.minrtt.traffic_fraction_at_least(5.0, use_ci_low=True))}"
        f" (paper ~2.0%)"
    )
    print(
        f"HDratio_P50 improvable >= 0.05: "
        f"{format_percent(result.hdratio.traffic_fraction_at_least(0.05, use_ci_low=True))}"
        f" (paper ~0.2%)"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.pipeline.io import write_samples
    from repro.workload import EdgeScenario, ScenarioConfig

    config = ScenarioConfig(
        seed=args.seed,
        days=args.days,
        networks_per_metro=args.networks_per_metro,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(f"Generating {args.days} day(s) across {len(scenario.networks)} networks…")
    count = write_samples(args.output, scenario.generate())
    print(f"wrote {count:,} samples to {args.output}")
    print(f"(the trace spans {config.total_windows} fifteen-minute windows)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.pipeline import dataset_from_source, fig6_global_performance
    from repro.pipeline.report import format_percent

    dataset = dataset_from_source(
        args.trace,
        study_windows=args.windows,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
    )
    print(f"{dataset.session_count:,} sessions loaded from {args.trace}")
    result = fig6_global_performance(dataset)
    print(f"global MinRTT p50: {result.median_minrtt:.1f} ms")
    print(f"global MinRTT p80: {result.p80_minrtt:.1f} ms")
    print(
        f"HD-testable sessions with HDratio > 0: "
        f"{format_percent(result.hdratio_positive_fraction)}"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.pipeline import StudyDataset
    from repro.workload import EdgeScenario, ScenarioConfig
    from repro.workload.calibration import render_report, run_calibration

    config = ScenarioConfig(
        seed=args.seed,
        days=1,
        networks_per_metro=3,
        base_sessions_per_window=args.rate,
    )
    scenario = EdgeScenario(config)
    print(f"Generating calibration snapshot ({len(scenario.networks)} networks)…")
    dataset = StudyDataset(study_windows=config.total_windows)
    dataset.ingest(scenario.generate())
    results = run_calibration(dataset)
    print(render_report(results))
    return 0 if all(result.passed for result in results) else 1


_COMMANDS = {
    "figure4": _cmd_figure4,
    "sweep": _cmd_sweep,
    "snapshot": _cmd_snapshot,
    "routing": _cmd_routing,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "calibrate": _cmd_calibrate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
