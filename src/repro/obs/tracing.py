"""Stage tracing: ``span()`` context manager and ``@traced`` decorator.

Lightweight in-path timing in the style of Dapper: a :class:`Tracer` keeps
a stack of open spans, so nested ``span()`` blocks produce dotted paths
(``cli.snapshot.pipeline.ingest.merge``) that reconstruct the call
structure without any global clock coordination. When no tracer is active,
``span()`` and ``@traced`` cost one global read and a conditional — the hot
paths stay instrumented permanently and pay only when observability is on.

Spans record *wall time*, which is an execution fact, not a data fact:
span timings are reported in the manifest's ``stages`` section and are
exempt from the serial/parallel counter-equality invariant.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "SpanRecord",
    "Tracer",
    "activate_tracer",
    "active_tracer",
    "span",
    "traced",
]


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    ``path`` is the dotted chain of enclosing span names; ``depth`` its
    nesting level (0 = root). ``wall_seconds`` is filled when the span
    closes. Records appear in ``Tracer.records`` in *entry* order, so
    parents precede their children.
    """

    name: str
    path: str
    depth: int
    start_seconds: float
    wall_seconds: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.wall_seconds is not None


class Tracer:
    """Collects spans; optionally mirrors them into a registry's timers.

    With ``metrics`` set, every closed span also records its duration into
    the registry timer ``stage.<path>`` so span statistics survive into
    merged registries and manifests.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics
        self.records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Span lifecycle (used by span()/traced; not usually called directly)
    # ------------------------------------------------------------------ #
    def begin(self, name: str) -> SpanRecord:
        path = ".".join([frame.name for frame in self._stack] + [name])
        record = SpanRecord(
            name=name,
            path=path,
            depth=len(self._stack),
            start_seconds=time.perf_counter() - self._origin,
        )
        self.records.append(record)
        self._stack.append(record)
        return record

    def end(self, record: SpanRecord) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise RuntimeError(
                f"span {record.path!r} closed out of order "
                "(spans must strictly nest)"
            )
        self._stack.pop()
        record.wall_seconds = (
            time.perf_counter() - self._origin - record.start_seconds
        )
        if self.metrics is not None:
            self.metrics.observe("stage." + record.path, record.wall_seconds)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def aggregate(self) -> Dict[str, Tuple[int, float]]:
        """``path -> (calls, total wall seconds)`` over closed spans, in
        first-entry order."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.records:
            if not record.closed:
                continue
            calls, total = totals.get(record.path, (0, 0.0))
            totals[record.path] = (calls + 1, total + record.wall_seconds)
        return totals

    def stage_table(self) -> List[dict]:
        """JSON-ready per-stage rows for the run manifest."""
        return [
            {"stage": path, "calls": calls, "wall_seconds": total}
            for path, (calls, total) in self.aggregate().items()
        ]


# --------------------------------------------------------------------- #
# Active tracer (process-local) and the user-facing API
# --------------------------------------------------------------------- #
_ACTIVE: Optional[Tracer] = None


@contextmanager
def activate_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-local active tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def span(name: str) -> Iterator[Optional[SpanRecord]]:
    """Time the enclosed block as a stage of the active tracer.

    Yields the open :class:`SpanRecord`, or None when no tracer is active
    (the block then runs untimed at near-zero cost).
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    record = tracer.begin(name)
    try:
        yield record
    finally:
        tracer.end(record)


def traced(name_or_func=None) -> Callable:
    """Decorator form of :func:`span`; usable bare or with a stage name.

    ``@traced`` uses the function's name; ``@traced("pipeline.fig6")``
    overrides it.
    """

    def decorate(func: Callable, label: Optional[str] = None) -> Callable:
        stage = label or func.__name__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if _ACTIVE is None:
                return func(*args, **kwargs)
            with span(stage):
                return func(*args, **kwargs)

        return wrapper

    if callable(name_or_func):
        return decorate(name_or_func)
    return lambda func: decorate(func, name_or_func)
