"""Pipeline observability: metrics, stage tracing, and run manifests.

The paper's methodology is only diagnosable when the pipeline can report
*what it actually did* — how many transactions were Gtestable, how many
sessions the hosting filter dropped, how long each aggregation pass took.
This package is the dependency-free (stdlib + :mod:`repro.stats.tdigest`)
instrumentation layer the rest of the repo records into:

- :mod:`repro.obs.registry` — :class:`MetricsRegistry`: named counters,
  gauges, and t-digest-backed histogram timers, with a commutative
  :meth:`~MetricsRegistry.merge` so sharded parallel runs report counters
  identical to a serial pass;
- :mod:`repro.obs.tracing` — ``span()`` / ``@traced`` stage timing with
  nested spans, recorded into an activatable :class:`Tracer`;
- :mod:`repro.obs.manifest` — :class:`RunManifest`: config, shard plan,
  per-stage wall times, and sample accounting serialized to JSON.

**The counter-equality invariant.** Every *counter* (and every gauge set
by the parent process) records facts about the input data, never about the
execution plan: a sharded run over N workers must produce counters
byte-identical to the serial run on the same input. Timings — span wall
times, per-shard timers — are execution facts and live in separate
manifest sections that are exempt from the invariant. Enforced by
``tests/test_obs_pipeline.py`` and ``tests/test_cli.py``.
"""

from repro.obs.manifest import MANIFEST_FORMAT_VERSION, RunManifest
from repro.obs.registry import (
    MetricsRegistry,
    TimerStat,
    activate_metrics,
    active_metrics,
    merge_into_active,
)
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    activate_tracer,
    active_tracer,
    span,
    traced,
)

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "MetricsRegistry",
    "RunManifest",
    "SpanRecord",
    "TimerStat",
    "Tracer",
    "activate_metrics",
    "activate_tracer",
    "active_metrics",
    "active_tracer",
    "merge_into_active",
    "span",
    "traced",
]
