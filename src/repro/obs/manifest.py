"""Run manifests: what a pipeline run did, serialized to JSON.

A :class:`RunManifest` is the durable record of one run: the command and
its configuration, the shard plan, per-stage wall times from the tracer,
and the full sample accounting from the metrics registry. The JSON layout
keeps *data facts* and *execution facts* in separate sections:

- ``counters`` / ``gauges`` — properties of the input data. A sharded run
  must produce these byte-identical to a serial run on the same seed (the
  counter-equality invariant; see ``repro.obs``).
- ``stages`` / ``timers`` / ``shard_plan`` — properties of this execution:
  wall times and partitioning, expected to differ across plans.
- ``degraded`` — what this execution lost to quarantined shards (the
  ``fault.*`` counters, summarized; see DESIGN.md §9). Empty (``{}``) for
  clean runs, so fault-free manifests are unchanged.
- ``streaming`` — what a streaming-ingest execution did (the ``stream.*``
  counters, summarized; see DESIGN.md §11): windows sealed/empty, samples
  sealed, late samples ledgered, alerts raised. Empty (``{}``) for batch
  runs, so non-streaming manifests are unchanged.
- ``serving`` — what a query-serving execution did (the ``serve.*``
  counters, summarized; see DESIGN.md §12): requests by outcome, cache
  hits/misses/evictions/invalidations, quarantined store errors. Empty
  (``{}``) for non-serving runs, so batch manifests are unchanged.
- ``dist`` — what a dispatch execution did (the ``dist.*`` counters,
  summarized; see DESIGN.md §13): workers connected/lost, tasks
  dispatched/completed/reassigned/stranded, remote failures, wire bytes.
  Empty (``{}``) for single-host runs, so local manifests are unchanged.

The format is versioned; :meth:`RunManifest.read` rejects manifests from a
different format version rather than misinterpreting them.
"""

from __future__ import annotations

import json
import pathlib
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["MANIFEST_FORMAT_VERSION", "RunManifest"]

MANIFEST_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]

#: Counter namespaces that constitute the run's sample accounting — the
#: read / filtered / Gtestable / achieved / coalesced / dropped ledger a
#: reader checks first (see :meth:`RunManifest.sample_accounting`).
_ACCOUNTING_PREFIXES = ("pipeline.", "methodology.", "core.", "io.")


def _degraded_from_counters(counters: Dict[str, int]) -> Dict[str, object]:
    """Degradation summary from the ``fault.*`` execution counters.

    Returns ``{}`` when no shard was quarantined and nothing was retried,
    so clean manifests stay byte-identical to the pre-fault-tolerance
    format.
    """
    summary = {
        "shards_lost": counters.get("fault.shards_quarantined", 0),
        "samples_lost": counters.get("fault.samples_lost", 0),
        "partitions_skipped": counters.get("fault.partitions_skipped", 0),
        "retries": counters.get("fault.shard_retries", 0),
    }
    if not any(summary.values()):
        return {}
    return summary


def _streaming_from_counters(counters: Dict[str, int]) -> Dict[str, object]:
    """Streaming summary from the ``stream.*`` execution counters.

    Returns ``{}`` when the run sealed no windows (a batch run), so
    non-streaming manifests stay byte-identical to the prior format.
    """
    summary = {
        "windows_sealed": counters.get("stream.windows.sealed", 0),
        "windows_empty": counters.get("stream.windows.empty", 0),
        "samples_sealed": counters.get("stream.samples.sealed", 0),
        "late_samples": counters.get("stream.late_samples", 0),
        "alerts": counters.get("stream.alerts", 0),
    }
    if not any(summary.values()):
        return {}
    return summary


def _serving_from_counters(counters: Dict[str, int]) -> Dict[str, object]:
    """Serving summary from the ``serve.*`` execution counters.

    Returns ``{}`` when no request was handled (a non-serving run), so
    batch manifests stay byte-identical to the prior format.
    """
    summary = {
        "requests": counters.get("serve.requests", 0),
        "responses_ok": counters.get("serve.responses.ok", 0),
        "responses_client_error": counters.get(
            "serve.responses.client_error", 0
        ),
        "responses_server_error": counters.get(
            "serve.responses.server_error", 0
        ),
        "cache_hits": counters.get("serve.cache.hits", 0),
        "cache_misses": counters.get("serve.cache.misses", 0),
        "cache_evictions": counters.get("serve.cache.evictions", 0),
        "cache_invalidations": counters.get("serve.cache.invalidations", 0),
        "quarantined": counters.get("serve.quarantined", 0),
    }
    if not any(summary.values()):
        return {}
    return summary


def _dist_from_counters(counters: Dict[str, int]) -> Dict[str, object]:
    """Dispatch summary from the ``dist.*`` execution counters.

    Returns ``{}`` when no worker was involved (a single-host run), so
    local manifests stay byte-identical to the prior format.
    """
    summary = {
        "workers_connected": counters.get("dist.workers.connected", 0),
        "workers_unreachable": counters.get("dist.workers.unreachable", 0),
        "workers_lost": counters.get("dist.workers.lost", 0),
        "tasks_dispatched": counters.get("dist.tasks.dispatched", 0),
        "tasks_completed": counters.get("dist.tasks.completed", 0),
        "tasks_reassigned": counters.get("dist.tasks.reassigned", 0),
        "tasks_stranded": counters.get("dist.tasks.stranded", 0),
        "remote_failures": counters.get("dist.remote_failures", 0),
        "bytes_sent": counters.get("dist.bytes.sent", 0),
        "bytes_received": counters.get("dist.bytes.received", 0),
    }
    if not any(summary.values()):
        return {}
    return summary


@dataclass
class RunManifest:
    """One run's configuration, accounting, and timing record."""

    command: str
    config: Dict[str, object] = field(default_factory=dict)
    shard_plan: Dict[str, object] = field(default_factory=dict)
    stages: List[dict] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, dict] = field(default_factory=dict)
    exit_code: Optional[int] = None
    python_version: str = field(default_factory=platform.python_version)
    #: Degradation summary for runs that quarantined shards: shards_lost,
    #: samples_lost, partitions_skipped, retries (and, when collected via
    #: the CLI, the ledger's per-shard entries). Empty for clean runs.
    degraded: Dict[str, object] = field(default_factory=dict)
    #: Streaming summary for ingest runs: windows sealed/empty, samples
    #: sealed, late samples, alerts. Empty for batch runs.
    streaming: Dict[str, object] = field(default_factory=dict)
    #: Serving summary for query-serving runs: requests by outcome, cache
    #: accounting, quarantined store errors. Empty for non-serving runs.
    serving: Dict[str, object] = field(default_factory=dict)
    #: Dispatch summary for distributed runs: worker and task accounting
    #: plus wire bytes. Empty for single-host runs.
    dist: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        config: Optional[Dict[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        shard_plan: Optional[Dict[str, object]] = None,
        exit_code: Optional[int] = None,
        degraded: Optional[Dict[str, object]] = None,
        streaming: Optional[Dict[str, object]] = None,
        serving: Optional[Dict[str, object]] = None,
        dist: Optional[Dict[str, object]] = None,
    ) -> "RunManifest":
        """Snapshot a registry and tracer into a manifest.

        ``degraded`` defaults to a summary derived from the registry's
        ``fault.*`` counters (empty when none fired); pass a
        ``DegradedLedger.to_dict()`` for the richer per-shard record.
        ``streaming`` likewise defaults to a ``stream.*`` counter summary
        (empty for batch runs); pass a richer dict — e.g. including a
        ``LateSampleLedger.to_dict()`` — to keep the per-window record.
        """
        snapshot = registry.to_dict() if registry is not None else {}
        counters = snapshot.get("counters", {})
        if degraded is None:
            degraded = _degraded_from_counters(counters)
        if streaming is None:
            streaming = _streaming_from_counters(counters)
        if serving is None:
            serving = _serving_from_counters(counters)
        if dist is None:
            dist = _dist_from_counters(counters)
        return cls(
            command=command,
            config=dict(config or {}),
            shard_plan=dict(shard_plan or {}),
            stages=tracer.stage_table() if tracer is not None else [],
            counters=counters,
            gauges=snapshot.get("gauges", {}),
            timers=snapshot.get("timers", {}),
            exit_code=exit_code,
            degraded=dict(degraded),
            streaming=dict(streaming),
            serving=dict(serving),
            dist=dict(dist),
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def sample_accounting(self) -> Dict[str, int]:
        """The data-fact counters (pipeline/methodology/core/io namespaces)."""
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith(_ACCOUNTING_PREFIXES)
        }

    def stage_names(self) -> List[str]:
        return [stage["stage"] for stage in self.stages]

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "command": self.command,
            "config": self.config,
            "shard_plan": self.shard_plan,
            "stages": self.stages,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": dict(sorted(self.timers.items())),
            "exit_code": self.exit_code,
            "python_version": self.python_version,
            "degraded": dict(self.degraded),
            "streaming": dict(self.streaming),
            "serving": dict(self.serving),
            "dist": dict(self.dist),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        version = payload.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ValueError(f"unsupported manifest format version {version!r}")
        return cls(
            command=payload["command"],
            config=dict(payload.get("config", {})),
            shard_plan=dict(payload.get("shard_plan", {})),
            stages=list(payload.get("stages", [])),
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            gauges={k: float(v) for k, v in payload.get("gauges", {}).items()},
            timers=dict(payload.get("timers", {})),
            exit_code=payload.get("exit_code"),
            python_version=payload.get("python_version", ""),
            degraded=dict(payload.get("degraded", {})),
            streaming=dict(payload.get("streaming", {})),
            serving=dict(payload.get("serving", {})),
            dist=dict(payload.get("dist", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: PathLike) -> "RunManifest":
        return cls.from_dict(
            json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        )
