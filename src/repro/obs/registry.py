"""Metrics registry: counters, gauges, and t-digest histogram timers.

A :class:`MetricsRegistry` is a plain, picklable bag of named metrics.
Shard workers each fill their own registry and the parent folds them back
together with :meth:`MetricsRegistry.merge`, whose semantics are chosen to
be **commutative and associative** so the merged result cannot depend on
worker completion order:

- **counters** add (integer sums commute);
- **gauges** take the maximum (high-water-mark semantics);
- **timers** merge their counts, totals, extrema, and t-digests.

Counter and gauge merges are *exactly* order-independent; a timer's summary
statistics (count/total/min/max) are too, while its digest quantiles are
order-independent only up to the t-digest's approximation — which is why
timers live outside the serial/parallel counter-equality invariant.

Metric names are dotted lowercase paths (``pipeline.samples.read``), one
namespace per layer: ``pipeline.*`` ingestion accounting, ``methodology.*``
the §3.2 classifier counts, ``core.*`` aggregation-store accounting,
``io.*`` trace serialization, ``store.*`` the columnar trace store
(partitions scanned/pruned, bytes read/skipped, rows decoded/written),
``netsim.*`` the simulator's event loop, ``fault.*`` fault handling —
injected faults (:mod:`repro.faultinject`) and the sharded pipeline's
retry/quarantine ledger, ``stream.*`` streaming ingest — windows
sealed/empty, samples sealed, late samples, online alerts
(:mod:`repro.pipeline.ingest`), ``serve.*`` the query-serving layer —
requests by outcome, hot-aggregation cache hits/misses/evictions/
invalidations, quarantined store errors (:mod:`repro.serve`).
``fault.*``, ``stream.*``, and ``serve.*`` counters are **execution
facts**: they describe how one run fared, never the data, so they go to
the run's execution registry only and sit outside the counter-equality
invariant (and outside the manifest's sample accounting). See DESIGN.md
§7 for the registry of names.
"""

from __future__ import annotations

import math
import re
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.stats.tdigest import TDigest

__all__ = [
    "MetricsRegistry",
    "TimerStat",
    "activate_metrics",
    "active_metrics",
    "merge_into_active",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: use dotted lowercase segments "
            "(letters, digits, underscores)"
        )
    return name


class TimerStat:
    """Accumulated observations of one duration metric (seconds)."""

    __slots__ = ("count", "total", "min", "max", "digest")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.digest = TDigest()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        self.digest.add(seconds)

    def merge(self, other: "TimerStat") -> "TimerStat":
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.digest.merge(other.digest)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        if self.count == 0:
            raise ValueError("timer has no observations")
        return self.digest.quantile(q)

    def to_dict(self) -> dict:
        """JSON-ready summary (digest reduced to representative quantiles)."""
        out = {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
        }
        if self.count:
            out["min_seconds"] = self.min
            out["max_seconds"] = self.max
            out["p50_seconds"] = self.quantile(0.5)
            out["p99_seconds"] = self.quantile(0.99)
        return out


class MetricsRegistry:
    """Named counters, gauges, and timers with commutative merging."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStat] = {}

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: int = 1) -> int:
        """Add ``value`` to counter ``name``; returns the new total."""
        if value < 0:
            raise ValueError("counters are monotonic; value must be >= 0")
        total = self._counters.get(name, 0) + value
        if name not in self._counters:
            _check_name(name)
        self._counters[name] = total
        return total

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def counters(self) -> Dict[str, int]:
        """All counters, sorted by name (a stable, comparable view)."""
        return dict(sorted(self._counters.items()))

    # ------------------------------------------------------------------ #
    # Gauges
    # ------------------------------------------------------------------ #
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``. Merging keeps the maximum across registries."""
        if name not in self._gauges:
            _check_name(name)
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(sorted(self._gauges.items()))

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def observe(self, name: str, seconds: float) -> None:
        """Record one duration observation under timer ``name``."""
        stat = self._timers.get(name)
        if stat is None:
            _check_name(name)
            stat = self._timers[name] = TimerStat()
        stat.observe(seconds)

    def timer_stat(self, name: str) -> Optional[TimerStat]:
        return self._timers.get(name)

    @property
    def timers(self) -> Dict[str, TimerStat]:
        return dict(sorted(self._timers.items()))

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Merging & serialization
    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in; commutative (see module docstring)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            current = self._gauges.get(name)
            self._gauges[name] = value if current is None else max(current, value)
        for name, stat in other._timers.items():
            mine = self._timers.get(name)
            if mine is None:
                fresh = self._timers[name] = TimerStat()
                fresh.merge(stat)
            else:
                mine.merge(stat)
        return self

    def to_dict(self) -> dict:
        """JSON-ready snapshot: counters/gauges exact, timers summarized."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "timers": {name: stat.to_dict() for name, stat in self.timers.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild counters/gauges from a snapshot (timer digests are not
        reconstructed — their summaries live in the manifest)."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.inc(name, int(value))
        for name, value in payload.get("gauges", {}).items():
            registry.set_gauge(name, float(value))
        return registry

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._timers)


# --------------------------------------------------------------------- #
# Active registry (process-local)
# --------------------------------------------------------------------- #
# Cross-cutting instrumentation points (the netsim event loop, the sharded
# pipeline's final fold) publish into the *active* registry when one is
# installed, so deep call stacks need no parameter threading. Worker
# processes never inherit an activation: each shard's StudyDataset carries
# its own registry, which is what keeps thread-pool workers from sharing
# (and double-counting into) the parent's.
_ACTIVE: Optional[MetricsRegistry] = None


@contextmanager
def activate_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the process-local active registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def active_metrics() -> Optional[MetricsRegistry]:
    """The currently activated registry, or None."""
    return _ACTIVE


def merge_into_active(registry: MetricsRegistry) -> None:
    """Fold ``registry`` into the active one (no-op without an activation
    or when ``registry`` *is* the active one)."""
    active = _ACTIVE
    if active is not None and active is not registry:
        active.merge(registry)
