"""Per-continent access-network profiles.

The paper's per-continent results (Figure 6) are driven by two physical
factors this module models: how far users are from PoPs (handled by
:mod:`repro.edge`) and what their access networks look like — bandwidth,
last-mile latency, loss. Profiles below are calibrated so the synthetic
population reproduces the paper's observations:

- median MinRTT: AF ≈ 58 ms, AS ≈ 51 ms, SA ≈ 40 ms, EU/NA/OC ≈ 25 ms or
  less; global median < 39 ms;
- sessions with HDratio = 0: AF 36%, AS 24%, SA 27%, others well below;
- the long MinRTT tail (seconds-scale) from bufferbloat and poor last
  miles (§3.3).

Each access class gives the *client-side* contribution: downlink rate,
last-mile RTT added on top of the backbone propagation RTT, and a loss
floor. Class mixes differ per continent (mobile-heavy in AF/AS/SA,
fibre/cable-heavy in EU/NA/OC).

The LTE/high-mobility classes (:func:`lte_class`, :func:`rail_class`)
additionally carry jitter and *burst* loss — the correlated fades measured
on high-speed rails — for the congestion-control scenario matrix; they are
exposed through :func:`mobile_profiles` rather than mixed into
:func:`default_profiles`, whose sampled populations are golden-pinned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.edge.geo import Continent
from repro.stats.sampling import Distribution, LogNormal, Mixture, Uniform

__all__ = [
    "AccessClass",
    "AccessProfile",
    "ContinentProfile",
    "default_profiles",
    "lte_class",
    "mobile_profiles",
    "rail_class",
]


@dataclass(frozen=True)
class AccessClass:
    """One access technology's parameters.

    ``jitter_ms`` and ``burst_loss`` default to ``None`` (not "a
    distribution of zero"): sampling draws from the RNG only for classes
    that define them, so adding these fields did not shift the random
    stream — and therefore the golden populations — of the pre-existing
    classes.
    """

    name: str
    downlink_mbps: Distribution
    last_mile_rtt_ms: Distribution
    loss_probability: Distribution
    jitter_ms: Optional[Distribution] = None
    burst_loss: Optional[Distribution] = None

    def sample(self, rng: random.Random) -> "AccessProfile":
        profile = AccessProfile(
            technology=self.name,
            downlink_mbps=max(self.downlink_mbps.sample(rng), 0.05),
            last_mile_rtt_ms=max(self.last_mile_rtt_ms.sample(rng), 0.2),
            loss_probability=min(max(self.loss_probability.sample(rng), 0.0), 0.3),
        )
        if self.jitter_ms is None and self.burst_loss is None:
            return profile
        jitter = (
            max(self.jitter_ms.sample(rng), 0.0)
            if self.jitter_ms is not None
            else 0.0
        )
        burst = (
            min(max(self.burst_loss.sample(rng), 0.0), 0.3)
            if self.burst_loss is not None
            else 0.0
        )
        return AccessProfile(
            technology=profile.technology,
            downlink_mbps=profile.downlink_mbps,
            last_mile_rtt_ms=profile.last_mile_rtt_ms,
            loss_probability=profile.loss_probability,
            jitter_ms=jitter,
            burst_loss_probability=burst,
        )


@dataclass(frozen=True)
class AccessProfile:
    """A single client's sampled access-network condition."""

    technology: str
    downlink_mbps: float
    last_mile_rtt_ms: float
    loss_probability: float
    jitter_ms: float = 0.0
    burst_loss_probability: float = 0.0

    @property
    def downlink_bytes_per_sec(self) -> float:
        return self.downlink_mbps * 1e6 / 8.0

    @property
    def hd_capable_link(self) -> bool:
        """Whether the raw link rate exceeds the 2.5 Mbps HD target."""
        return self.downlink_mbps >= 2.5


@dataclass(frozen=True)
class ContinentProfile:
    """Mixture of access classes for one continent.

    ``last_mile_scale`` multiplies the sampled last-mile RTT and
    ``loss_scale`` the sampled loss probability — regional infrastructure
    quality knobs used to pin the per-continent medians of Figure 6.
    """

    continent: Continent
    classes: Sequence[Tuple[float, AccessClass]]
    last_mile_scale: float = 1.0
    loss_scale: float = 1.0

    def draw_class(self, rng: random.Random) -> AccessClass:
        """Pick an access class according to the continent's mix."""
        roll = rng.random()
        total = sum(weight for weight, _ in self.classes)
        cumulative = 0.0
        for weight, access_class in self.classes:
            cumulative += weight / total
            if roll <= cumulative:
                return access_class
        return self.classes[-1][1]

    def sample_from_class(
        self, access_class: AccessClass, rng: random.Random
    ) -> AccessProfile:
        """Sample a client profile from a given class, applying the
        continent's infrastructure scales."""
        profile = access_class.sample(rng)
        if self.last_mile_scale == 1.0 and self.loss_scale == 1.0:
            return profile
        return AccessProfile(
            technology=profile.technology,
            downlink_mbps=profile.downlink_mbps,
            last_mile_rtt_ms=profile.last_mile_rtt_ms * self.last_mile_scale,
            loss_probability=min(profile.loss_probability * self.loss_scale, 0.3),
            jitter_ms=profile.jitter_ms,
            burst_loss_probability=profile.burst_loss_probability,
        )

    def sample(self, rng: random.Random) -> AccessProfile:
        return self.sample_from_class(self.draw_class(rng), rng)


def _fiber() -> AccessClass:
    return AccessClass(
        name="fiber",
        downlink_mbps=LogNormal(mu=4.0, sigma=0.6, low=20.0, high=1000.0),
        last_mile_rtt_ms=Uniform(1.0, 5.0),
        loss_probability=Uniform(0.0, 0.001),
    )


def _cable() -> AccessClass:
    return AccessClass(
        name="cable",
        downlink_mbps=LogNormal(mu=3.2, sigma=0.7, low=8.0, high=500.0),
        last_mile_rtt_ms=Uniform(3.0, 12.0),
        loss_probability=Uniform(0.0, 0.004),
    )


def _dsl() -> AccessClass:
    return AccessClass(
        name="dsl",
        downlink_mbps=LogNormal(mu=2.0, sigma=0.7, low=1.0, high=60.0),
        last_mile_rtt_ms=Uniform(8.0, 30.0),
        loss_probability=Uniform(0.0, 0.008),
    )


def _mobile_good() -> AccessClass:
    """4G in decent coverage."""
    return AccessClass(
        name="mobile-4g",
        downlink_mbps=LogNormal(mu=2.3, sigma=0.8, low=1.0, high=150.0),
        last_mile_rtt_ms=LogNormal(mu=3.0, sigma=0.5, low=10.0, high=150.0),
        loss_probability=Uniform(0.0, 0.01),
    )


def _mobile_weak() -> AccessClass:
    """2G/3G or congested 4G — the non-HD-capable population."""
    return AccessClass(
        name="mobile-3g",
        downlink_mbps=LogNormal(mu=0.2, sigma=0.9, low=0.1, high=4.0),
        last_mile_rtt_ms=LogNormal(mu=4.0, sigma=0.6, low=30.0, high=2000.0),
        loss_probability=Uniform(0.005, 0.04),
    )


def _satellite() -> AccessClass:
    return AccessClass(
        name="satellite",
        downlink_mbps=LogNormal(mu=1.8, sigma=0.5, low=1.0, high=30.0),
        last_mile_rtt_ms=Uniform(450.0, 650.0),
        loss_probability=Uniform(0.001, 0.02),
    )


def lte_class() -> AccessClass:
    """LTE in decent coverage, with the radio's jitter and burst fades.

    The active-passive LTE studies show last-mile RTT variance (handover
    and scheduler-induced jitter in the tens of milliseconds) and loss that
    arrives in bursts rather than i.i.d. — the regime where loss-based
    congestion control collapses and rate-based control holds goodput.
    """
    return AccessClass(
        name="mobile-lte",
        downlink_mbps=LogNormal(mu=2.8, sigma=0.7, low=2.0, high=200.0),
        last_mile_rtt_ms=LogNormal(mu=3.2, sigma=0.5, low=15.0, high=200.0),
        loss_probability=Uniform(0.0, 0.005),
        jitter_ms=Uniform(5.0, 40.0),
        burst_loss=Uniform(0.001, 0.01),
    )


def rail_class() -> AccessClass:
    """High-mobility LTE (high-speed rail): deep correlated fades.

    Frequent handovers at speed produce loss trains and seconds-scale RTT
    spikes; the mean burst is longer and the entry probability higher than
    stationary LTE.
    """
    return AccessClass(
        name="mobile-rail",
        downlink_mbps=LogNormal(mu=1.8, sigma=0.9, low=0.5, high=100.0),
        last_mile_rtt_ms=LogNormal(mu=3.8, sigma=0.7, low=25.0, high=800.0),
        loss_probability=Uniform(0.001, 0.01),
        jitter_ms=Uniform(15.0, 80.0),
        burst_loss=Uniform(0.005, 0.03),
    )


def mobile_profiles() -> Dict[str, AccessClass]:
    """The mobile/high-loss classes of the CC scenario matrix, by name.

    Kept separate from :func:`default_profiles` so the golden-pinned
    continent populations are untouched; the CC-matrix ablation samples
    these directly.
    """
    return {
        "lte": lte_class(),
        "rail": rail_class(),
    }


def default_profiles() -> Dict[Continent, ContinentProfile]:
    """Access-class mixes per continent, calibrated to Figure 6(c).

    Weak-mobile shares approximate the HDratio=0 fractions the paper
    reports (AF 36%, AS 24%, SA 27%), with small additions from DSL/
    satellite tails elsewhere.
    """
    C = Continent
    return {
        C.EUROPE: ContinentProfile(
            C.EUROPE,
            (
                (0.36, _fiber()),
                (0.26, _cable()),
                (0.15, _dsl()),
                (0.16, _mobile_good()),
                (0.07, _mobile_weak()),
            ),
            last_mile_scale=1.5,
            loss_scale=1.5,
        ),
        C.NORTH_AMERICA: ContinentProfile(
            C.NORTH_AMERICA,
            (
                (0.28, _fiber()),
                (0.34, _cable()),
                (0.12, _dsl()),
                (0.17, _mobile_good()),
                (0.08, _mobile_weak()),
                (0.01, _satellite()),
            ),
            last_mile_scale=1.7,
            loss_scale=1.5,
        ),
        C.OCEANIA: ContinentProfile(
            C.OCEANIA,
            (
                (0.25, _fiber()),
                (0.28, _cable()),
                (0.22, _dsl()),
                (0.18, _mobile_good()),
                (0.06, _mobile_weak()),
                (0.01, _satellite()),
            ),
            last_mile_scale=1.0,
            loss_scale=1.3,
        ),
        C.ASIA: ContinentProfile(
            C.ASIA,
            (
                (0.15, _fiber()),
                (0.11, _cable()),
                (0.14, _dsl()),
                (0.32, _mobile_good()),
                (0.28, _mobile_weak()),
            ),
            last_mile_scale=1.4,
            loss_scale=2.0,
        ),
        C.SOUTH_AMERICA: ContinentProfile(
            C.SOUTH_AMERICA,
            (
                (0.11, _fiber()),
                (0.17, _cable()),
                (0.18, _dsl()),
                (0.23, _mobile_good()),
                (0.31, _mobile_weak()),
            ),
            last_mile_scale=1.1,
            loss_scale=1.8,
        ),
        C.AFRICA: ContinentProfile(
            C.AFRICA,
            (
                (0.03, _fiber()),
                (0.05, _cable()),
                (0.13, _dsl()),
                (0.36, _mobile_good()),
                (0.41, _mobile_weak()),
                (0.02, _satellite()),
            ),
            last_mile_scale=0.95,
            loss_scale=2.2,
        ),
    }
