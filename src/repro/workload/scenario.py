"""End-to-end synthetic trace generation.

Builds the universe (metros → client networks → routes → events) and streams
:class:`~repro.core.records.SessionSample` objects for a multi-day study
period, reproducing the structure of the paper's dataset (§2.2.4):

- sessions are sampled at the PoP load balancer; ~47% ride the policy-
  preferred route, the rest the two best alternates (§6.2);
- traffic volume follows local-time activity (drives Figure 5's population
  mixes and §5's diurnal congestion);
- per-continent access profiles and PoP distances produce Figure 6;
- destination-side events (shared by all routes) produce degradation
  without opportunity; route-specific impairments and mis-preferred route
  sets produce the limited opportunity of §6;
- ~2% of networks are hosting providers/VPNs, to exercise the dataset
  filter (§2.2.4).

Scale is configurable; :meth:`ScenarioConfig.small` is sized for tests and
the larger presets for benchmarks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.classification import WINDOWS_PER_DAY
from repro.core.constants import AGGREGATION_WINDOW_SECONDS
from repro.core.records import SessionSample
from repro.edge.bgp import BgpRoute, RouteGenerator
from repro.edge.cartographer import Cartographer
from repro.edge.geo import Continent, propagation_rtt_ms
from repro.edge.proxygen import LoadBalancer
from repro.edge.routing import MeasurementRouter, RankedRoutes, rank_routes
from repro.edge.topology import (
    DEFAULT_METROS,
    ClientNetwork,
    Metro,
    PoP,
    default_pops,
)
from repro.workload.channel import ChannelModel, PathState
from repro.workload.events import (
    ContinuousImpairment,
    DiurnalCongestion,
    EpisodicOutage,
    TemporalEvent,
    activity_level,
    combine_events,
    local_hour,
)
from repro.workload.profiles import AccessClass, default_profiles
from repro.workload.sessions import WorkloadModel

__all__ = ["ScenarioConfig", "EdgeScenario", "NetworkState"]

#: Route capacity expressed as an effective per-session bottleneck (Mbps)
#: when the interconnect is uncongested: plentiful, so the access link
#: normally dominates. Congestion events scale this down.
ROUTE_BASE_MBPS = 40.0

#: Share of a network's clients on its dominant access technology.
DOMINANT_CLASS_SHARE = 0.85


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs for universe size and behaviour mix."""

    seed: int = 42
    days: int = 10
    networks_per_metro: int = 1
    base_sessions_per_window: float = 60.0
    sample_rate: float = 1.0
    #: Share of AF/AS sessions served from the nearest out-of-continent PoP
    #: (Cartographer capacity overflow, §2.1).
    overflow_steer_fraction: float = 0.06
    max_transactions_per_session: int = 200
    hosting_network_fraction: float = 0.05
    # Destination-side event mix (degradation §5):
    diurnal_fraction: float = 0.16
    episodic_fraction: float = 0.12
    continuous_fraction: float = 0.03
    # Route-specific impairment mix (opportunity §6):
    route_episodic_fraction: float = 0.05
    mispreferred_fraction: float = 0.04
    include_figure5_network: bool = False

    @property
    def total_windows(self) -> int:
        return self.days * WINDOWS_PER_DAY

    @classmethod
    def small(cls, seed: int = 42) -> "ScenarioConfig":
        """Test-sized: 2 days, light traffic."""
        return cls(
            seed=seed,
            days=2,
            base_sessions_per_window=40.0,
        )

    @classmethod
    def snapshot(cls, seed: int = 42) -> "ScenarioConfig":
        """Single-day heavy snapshot for distribution figures (6, 7)."""
        return cls(seed=seed, days=1, base_sessions_per_window=90.0)


@dataclass
class NetworkState:
    """Everything the generator holds per client network.

    ``dominant_class`` is the network's prevailing access technology: real
    eyeball ASes are mostly one technology (a cable ISP, a mobile carrier),
    which keeps within-prefix performance homogeneous enough for the
    paper's median-based statistics to be tight (§3.4.1).
    """

    network: ClientNetwork
    pop: PoP
    base_rtt_ms: float
    ranked: RankedRoutes
    dominant_class: Optional[AccessClass] = None
    dest_events: List[TemporalEvent] = field(default_factory=list)
    route_events: Dict[int, List[TemporalEvent]] = field(default_factory=dict)
    overflow_pop: Optional[PoP] = None
    overflow_rtt_ms: float = 0.0

    @property
    def group_country(self) -> str:
        return self.network.country


class EdgeScenario:
    """Generates the synthetic study trace."""

    def __init__(self, config: ScenarioConfig = ScenarioConfig()) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.pops = default_pops()
        self.profiles = default_profiles()
        self.cartographer = Cartographer(self.pops, random.Random(config.seed + 1))
        self.workload = WorkloadModel(random.Random(config.seed + 2))
        self.channel = ChannelModel(random.Random(config.seed + 3))
        self.router = MeasurementRouter(random.Random(config.seed + 4))
        self.route_generator = RouteGenerator(
            random.Random(config.seed + 5),
            mispreferred_probability=config.mispreferred_fraction,
        )
        self._session_counter = 0
        self.networks: List[NetworkState] = self._build_universe()
        self.balancers: Dict[str, LoadBalancer] = {
            pop.name: LoadBalancer(
                pop.name,
                random.Random((config.seed, pop.name).__hash__()),
                sample_rate=config.sample_rate,
                router=self.router,
            )
            for pop in self.pops
        }

    # ------------------------------------------------------------------ #
    # Universe construction
    # ------------------------------------------------------------------ #
    def _build_universe(self) -> List[NetworkState]:
        rng = self.rng
        networks: List[NetworkState] = []
        asn = 64512
        for metro in DEFAULT_METROS:
            for _ in range(self.config.networks_per_metro):
                asn += 1
                octet2 = rng.randrange(16, 240)
                octet3 = rng.randrange(0, 240)
                prefix = f"{rng.randrange(1, 223)}.{octet2}.{octet3 & 0xF0}.0/20"
                network = ClientNetwork(
                    asn=asn,
                    prefixes=[prefix],
                    metro=metro,
                    user_weight=metro.weight,
                    is_hosting_provider=(
                        rng.random() < self.config.hosting_network_fraction
                    ),
                )
                networks.append(self._instantiate(network))
        if self.config.include_figure5_network:
            networks.append(self._figure5_network(asn + 1))
        return networks

    def _figure5_network(self, asn: int) -> NetworkState:
        """A /16 serving California plus Hawaii (Figure 5)."""
        metros = {metro.name: metro for metro in DEFAULT_METROS}
        network = ClientNetwork(
            asn=asn,
            prefixes=["198.51.0.0/16"],
            metro=metros["sanfrancisco"],
            user_weight=1.0,
            secondary_metro=metros["honolulu"],
            secondary_share=0.45,
        )
        return self._instantiate(network)

    def _instantiate(self, network: ClientNetwork) -> NetworkState:
        rng = self.rng
        pop = self.cartographer.primary_pop(network)
        base_rtt = propagation_rtt_ms(
            network.metro.location.distance_km(pop.location)
        )
        routes = self.route_generator.routes_for_prefix(
            network.prefixes[0], network.asn
        )
        ranked = rank_routes(routes)
        dominant = self.profiles[network.continent].draw_class(rng)
        state = NetworkState(
            network=network,
            pop=pop,
            base_rtt_ms=base_rtt,
            ranked=ranked,
            dominant_class=dominant,
        )
        # AF/AS networks overflow to the nearest out-of-continent PoP for a
        # share of sessions (§2.1: 4.8% of all traffic is Asia-via-EU and
        # 2.1% Africa-via-EU) when local capacity is short.
        if network.continent in (Continent.AFRICA, Continent.ASIA):
            remote = min(
                (p for p in self.pops if p.continent is not network.continent),
                key=lambda p: network.metro.location.distance_km(p.location),
                default=None,
            )
            if remote is not None and remote is not pop:
                state.overflow_pop = remote
                state.overflow_rtt_ms = propagation_rtt_ms(
                    network.metro.location.distance_km(remote.location)
                )
        self._assign_events(state)
        return state

    def _assign_events(self, state: NetworkState) -> None:
        rng = self.rng
        config = self.config
        longitude = state.network.metro.location.longitude
        weak_infra = state.network.continent in (
            Continent.AFRICA,
            Continent.ASIA,
            Continent.SOUTH_AMERICA,
        )
        diurnal_p = config.diurnal_fraction * (1.8 if weak_infra else 0.7)
        if rng.random() < diurnal_p:
            state.dest_events.append(
                DiurnalCongestion(
                    longitude_deg=longitude,
                    peak_queue_ms=rng.uniform(4.0, 20.0),
                    peak_loss=rng.uniform(0.005, 0.04),
                    peak_capacity_factor=rng.uniform(0.03, 0.5),
                )
            )
        if rng.random() < config.episodic_fraction:
            start = rng.randrange(0, max(config.total_windows - 8, 1))
            state.dest_events.append(
                EpisodicOutage(
                    start_window=start,
                    end_window=start + rng.randrange(4, 16),
                    queue_ms=rng.uniform(10.0, 40.0),
                    loss=rng.uniform(0.005, 0.03),
                    capacity_factor=rng.uniform(0.4, 0.8),
                )
            )
        if rng.random() < config.continuous_fraction:
            state.dest_events.append(
                ContinuousImpairment(
                    queue_ms=rng.uniform(5.0, 15.0),
                    loss=rng.uniform(0.002, 0.01),
                    capacity_factor=rng.uniform(0.6, 0.9),
                )
            )
        # Route-specific outages hit exactly one route (bypassable -> §6
        # opportunity when they hit the preferred route).
        if rng.random() < config.route_episodic_fraction:
            rank = rng.randrange(0, len(state.ranked.routes))
            start = rng.randrange(0, max(config.total_windows - 8, 1))
            state.route_events.setdefault(rank, []).append(
                EpisodicOutage(
                    start_window=start,
                    end_window=start + rng.randrange(8, 32),
                    queue_ms=rng.uniform(8.0, 20.0),
                    loss=rng.uniform(0.005, 0.02),
                    capacity_factor=rng.uniform(0.5, 0.9),
                )
            )

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #
    def _draw_client_metro(self, state: NetworkState, window: int) -> Metro:
        """Which metro this session's client sits in.

        Single-metro networks are trivial. Dual-metro networks (Figure 5)
        weight the draw by each metro's share *and* its local-time activity,
        so the client mix — and therefore the group's median MinRTT —
        oscillates over the day exactly as the paper's example shows.
        """
        network = state.network
        if network.secondary_metro is None:
            return network.metro
        primary_activity = activity_level(
            local_hour(window, network.metro.location.longitude)
        )
        secondary_activity = activity_level(
            local_hour(window, network.secondary_metro.location.longitude)
        )
        weight_secondary = network.secondary_share * secondary_activity
        weight_primary = (1.0 - network.secondary_share) * primary_activity
        roll = self.channel.rng.random()
        if roll < weight_secondary / (weight_secondary + weight_primary):
            return network.secondary_metro
        return network.metro

    def path_state(
        self,
        state: NetworkState,
        route: BgpRoute,
        rank: int,
        window: int,
        client_metro: Optional[Metro] = None,
        base_rtt_override: Optional[float] = None,
    ) -> PathState:
        """Combine geography, route condition, events, and an access draw."""
        rng = self.channel.rng
        continent_profile = self.profiles[state.network.continent]
        if state.dominant_class is not None and rng.random() < DOMINANT_CLASS_SHARE:
            profile = continent_profile.sample_from_class(state.dominant_class, rng)
        else:
            profile = continent_profile.sample(rng)

        modifier = combine_events(state.dest_events, window)
        for event in state.route_events.get(rank, ()):
            modifier = modifier.combine(event.modifier_at(window))

        # Geographic spread: Figure-5 networks draw clients from two metros.
        if client_metro is None:
            client_metro = self._draw_client_metro(state, window)
        if base_rtt_override is not None:
            base_rtt = base_rtt_override
        elif client_metro is state.network.metro:
            base_rtt = state.base_rtt_ms
        else:
            base_rtt = propagation_rtt_ms(
                client_metro.location.distance_km(state.pop.location)
            )

        route_capacity = ROUTE_BASE_MBPS * route.condition.congestion_capacity
        congested_capacity = route_capacity * modifier.capacity_factor
        bottleneck = min(profile.downlink_mbps, congested_capacity)
        rtt = (
            base_rtt
            + route.condition.rtt_penalty_ms
            + profile.last_mile_rtt_ms
            + modifier.extra_queue_ms
        )
        loss = min(
            profile.loss_probability
            + route.condition.loss_floor
            + modifier.extra_loss,
            0.4,
        )
        return PathState(
            base_rtt_ms=max(rtt, 0.5),
            bottleneck_mbps=max(bottleneck, 0.05),
            loss_probability=loss,
            queue_delay_ms=0.0,  # standing queue already folded into rtt
            # profile.jitter_ms is 0.0 for every default class; only the
            # LTE/high-mobility classes of the CC matrix contribute here.
            jitter_ms=profile.jitter_ms
            + modifier.extra_jitter_ms
            + rng.uniform(0.0, 3.0),
        )

    def sessions_in_window(self, state: NetworkState, window: int) -> int:
        hour = local_hour(window, state.network.metro.location.longitude)
        expected = (
            self.config.base_sessions_per_window
            * state.network.user_weight
            * activity_level(hour)
        )
        # Poisson draw around the expectation.
        return self._poisson(expected)

    def _poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        rng = self.rng
        if lam > 50:
            return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
        threshold = math.exp(-lam)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    def generate_window(
        self, state: NetworkState, window: int
    ) -> Iterator[SessionSample]:
        """All sampled sessions for one network in one window."""
        window_start = window * AGGREGATION_WINDOW_SECONDS
        for _ in range(self.sessions_in_window(state, window)):
            serving_pop, base_rtt_override = state.pop, None
            if (
                state.overflow_pop is not None
                and self.rng.random() < self.config.overflow_steer_fraction
            ):
                serving_pop = state.overflow_pop
                base_rtt_override = state.overflow_rtt_ms
            balancer = self.balancers[serving_pop.name]
            decision = balancer.admit(state.ranked)
            if not decision.sampled or decision.route is None:
                continue
            rank = decision.preference_rank
            client_metro = self._draw_client_metro(state, window)
            path = self.path_state(
                state,
                decision.route,
                rank,
                window,
                client_metro=client_metro,
                base_rtt_override=base_rtt_override,
            )
            spec = self.workload.sample_session()
            if len(spec.transactions) > self.config.max_transactions_per_session:
                del spec.transactions[self.config.max_transactions_per_session :]
            self._session_counter += 1
            start = window_start + self.rng.uniform(
                0.0, AGGREGATION_WINDOW_SECONDS * 0.9
            )
            sample = self.channel.simulate_session(
                spec, path, start, session_id=self._session_counter
            )
            sample = balancer.finalize(sample, decision)
            sample.client_country = state.network.country
            sample.client_continent = state.network.continent.code
            sample.client_ip_is_hosting = state.network.is_hosting_provider
            sample.geo_tag = client_metro.name
            yield sample

    def generate(self) -> Iterator[SessionSample]:
        """Stream the full study period."""
        for window in range(self.config.total_windows):
            for state in self.networks:
                yield from self.generate_window(state, window)
