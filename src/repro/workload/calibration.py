"""Calibration validation: the synthetic universe against the paper's anchors.

The synthetic edge is only useful if it keeps matching the published
distribution checkpoints as the code evolves. This module makes the
calibration contract executable: every anchor the paper states (Figures
1–3 workload shape, Figure 6 per-continent performance) is a declarative
:class:`CalibrationTarget` with a tolerance band, and
:func:`run_calibration` scores a generated dataset against all of them.

Used by the test suite as a regression gate and exposed as
``repro calibrate`` for anyone who retunes the workload models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.pipeline.dataset import StudyDataset
from repro.pipeline.experiments import (
    fig1_session_behaviour,
    fig2_transfer_sizes,
    fig3_transaction_counts,
    fig6_global_performance,
)

__all__ = ["CalibrationTarget", "CalibrationResult", "run_calibration"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper anchor with an acceptance band."""

    name: str
    paper_value: float
    low: float
    high: float
    extract: Callable[[dict], float]
    section: str = ""

    def check(self, context: dict) -> "CalibrationResult":
        measured = self.extract(context)
        return CalibrationResult(
            target=self,
            measured=measured,
            passed=self.low <= measured <= self.high,
        )


@dataclass(frozen=True)
class CalibrationResult:
    target: CalibrationTarget
    measured: float
    passed: bool


def _targets() -> List[CalibrationTarget]:
    T = CalibrationTarget
    return [
        # Figure 1(a)
        T("sessions < 1 s", 0.074, 0.03, 0.13,
          lambda c: c["fig1"].under_one_second, "fig1"),
        T("sessions < 60 s", 0.33, 0.24, 0.50,
          lambda c: c["fig1"].under_one_minute, "fig1"),
        T("sessions > 180 s", 0.20, 0.12, 0.40,
          lambda c: c["fig1"].over_three_minutes, "fig1"),
        T("H1 minus H2 share under a minute", 0.18, 0.08, 0.35,
          lambda c: (
              c["fig1"].duration_h1.fraction_at_most(60.0)
              - c["fig1"].duration_h2.fraction_at_most(60.0)
          ), "fig1"),
        # Figure 1(b)
        T("sessions active < 10% of lifetime", 0.78, 0.60, 1.0,
          lambda c: c["fig1"].mostly_idle_fraction, "fig1"),
        # Figure 2
        T("sessions < 10 KB", 0.58, 0.40, 0.70,
          lambda c: c["fig2"].sessions_under_10kb, "fig2"),
        T("sessions > 1 MB", 0.06, 0.01, 0.12,
          lambda c: c["fig2"].sessions_over_1mb, "fig2"),
        T("median response bytes", 5000, 1500, 6000,
          lambda c: c["fig2"].median_response, "fig2"),
        # Figure 3
        T("HTTP/1.1 sessions < 5 txns", 0.87, 0.79, 0.95,
          lambda c: c["fig3"].h1_under_5, "fig3"),
        T("HTTP/2 sessions < 5 txns", 0.75, 0.67, 0.83,
          lambda c: c["fig3"].h2_under_5, "fig3"),
        T("byte share of >=50-txn sessions", 0.5, 0.35, 0.75,
          lambda c: c["fig3"].heavy_session_byte_share, "fig3"),
        # Figure 6 — global
        T("global MinRTT p50 (ms)", 39.0, 28.0, 50.0,
          lambda c: c["fig6"].median_minrtt, "fig6"),
        T("global MinRTT p80 (ms)", 78.0, 55.0, 100.0,
          lambda c: c["fig6"].p80_minrtt, "fig6"),
        T("HD-testable sessions with HDratio > 0", 0.82, 0.74, 0.95,
          lambda c: c["fig6"].hdratio_positive_fraction, "fig6"),
        # Figure 6 — per continent
        T("Africa MinRTT p50 (ms)", 58.0, 45.0, 75.0,
          lambda c: c["fig6"].continent_median_minrtt("AF"), "fig6"),
        T("Asia MinRTT p50 (ms)", 51.0, 38.0, 65.0,
          lambda c: c["fig6"].continent_median_minrtt("AS"), "fig6"),
        T("South America MinRTT p50 (ms)", 40.0, 30.0, 55.0,
          lambda c: c["fig6"].continent_median_minrtt("SA"), "fig6"),
        T("Europe MinRTT p50 (ms)", 25.0, 15.0, 35.0,
          lambda c: c["fig6"].continent_median_minrtt("EU"), "fig6"),
        T("North America MinRTT p50 (ms)", 25.0, 15.0, 35.0,
          lambda c: c["fig6"].continent_median_minrtt("NA"), "fig6"),
        T("Africa HDratio=0 share", 0.36, 0.24, 0.48,
          lambda c: c["fig6"].continent_zero_hd_fraction("AF"), "fig6"),
        T("Asia HDratio=0 share", 0.24, 0.14, 0.36,
          lambda c: c["fig6"].continent_zero_hd_fraction("AS"), "fig6"),
        T("South America HDratio=0 share", 0.27, 0.13, 0.40,
          lambda c: c["fig6"].continent_zero_hd_fraction("SA"), "fig6"),
    ]


def run_calibration(
    dataset: StudyDataset,
    targets: Optional[Sequence[CalibrationTarget]] = None,
) -> List[CalibrationResult]:
    """Score a dataset against all (or given) calibration targets."""
    context = {
        "fig1": fig1_session_behaviour(dataset),
        "fig2": fig2_transfer_sizes(dataset),
        "fig3": fig3_transaction_counts(dataset),
        "fig6": fig6_global_performance(dataset),
    }
    return [target.check(context) for target in (targets or _targets())]


def render_report(results: Sequence[CalibrationResult]) -> str:
    """Human-readable pass/fail table."""
    from repro.pipeline.report import format_table

    rows = [
        (
            "PASS" if result.passed else "FAIL",
            result.target.name,
            f"{result.target.paper_value:g}",
            f"{result.measured:.4g}",
            f"[{result.target.low:g}, {result.target.high:g}]",
        )
        for result in results
    ]
    passed = sum(1 for r in results if r.passed)
    return (
        format_table(
            ("", "anchor", "paper", "measured", "accepted band"),
            rows,
            title="Calibration against the paper's published anchors:",
        )
        + f"\n{passed}/{len(results)} anchors within band"
    )
