"""Session/transaction workload models calibrated to §2.3.

Generates the *application-layer* shape of HTTP sessions — protocol version,
lifetime, idle structure, transaction count, response sizes — independent of
network conditions (which :mod:`repro.workload.channel` applies).

Calibration anchors from the paper:

- Figure 1(a): 7.4% of sessions last < 1 s; 33% < 1 min; 20% > 3 min;
  44% of HTTP/1.1 vs 26% of HTTP/2 sessions last < 1 min.
- Figure 1(b): sessions are mostly idle — 75% (H1) / 80% (H2) of sessions
  are active < 10% of their lifetime.
- Figure 2: > 58% of sessions transfer < 10 KB; the median response is
  < 6 KB; media responses have median ≈ 19 KB and 17% ≥ 100 KB; 6% of
  sessions move > 1 MB; intro: 50% of objects < 3 KB.
- Figure 3: most sessions have one transaction; 87% of H1 and 75% of H2
  sessions have < 5; sessions with ≥ 50 transactions carry > 50% of bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.records import HttpVersion
from repro.stats.sampling import (
    Constant,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    lognormal_from_quantiles,
)

__all__ = ["SessionSpec", "TransactionSpec", "WorkloadModel"]


@dataclass(frozen=True)
class TransactionSpec:
    """One HTTP transaction: a response of ``response_bytes``, requested
    ``think_time_seconds`` after the previous response finished."""

    response_bytes: int
    think_time_seconds: float
    is_media: bool


@dataclass
class SessionSpec:
    """Application-layer description of one HTTP session."""

    http_version: HttpVersion
    target_duration_seconds: float
    is_media_session: bool
    transactions: List[TransactionSpec] = field(default_factory=list)

    @property
    def total_response_bytes(self) -> int:
        return sum(txn.response_bytes for txn in self.transactions)

    @property
    def transaction_count(self) -> int:
        return len(self.transactions)


class WorkloadModel:
    """Samples :class:`SessionSpec` objects matching the paper's workload."""

    #: Share of sessions on HTTP/2 (browsers + newer mobile apps, §2.3).
    HTTP2_SHARE = 0.55
    #: Share of sessions against media (image/video) endpoints.
    MEDIA_SESSION_SHARE = 0.20

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        # Response sizes: API/HTML responses pinned to (p50 ≈ 3 KB,
        # p90 ≈ 30 KB); media responses to (p50 ≈ 19 KB, p83 ≈ 100 KB).
        self._small_response = lognormal_from_quantiles(
            0.5, 2_800.0, 0.9, 16_000.0, low=150.0, high=5e6
        )
        self._media_response = lognormal_from_quantiles(
            0.5, 19_000.0, 0.83, 100_000.0, low=400.0, high=5e7
        )
        # Streaming-video chunks: the >1 MB session tail of Figure 2.
        self._video_chunk = LogNormal(mu=13.1, sigma=0.7, low=5e4, high=8e6)
        # Think times between transactions (Figure 1(b)'s idleness) and the
        # heavy transaction-count tails (hoisted: these are sampled per
        # transaction, the hottest path in trace generation).
        self._think_time = LogNormal(mu=1.3, sigma=1.2, low=0.0, high=600.0)
        self._tail_count_h2 = Pareto(xm=50.0, alpha=1.3, high=2000.0)
        self._tail_count_h1 = Pareto(xm=50.0, alpha=1.5, high=1000.0)

        # Session durations per protocol (seconds). Mixtures pinned to the
        # Figure 1(a) checkpoints.
        self._duration_h1 = Mixture(
            (
                (0.10, Uniform(0.05, 1.0)),        # one-shot API calls
                (0.37, LogNormal(mu=2.8, sigma=1.0, low=1.0, high=60.0)),
                (0.33, LogNormal(mu=4.8, sigma=0.5, low=60.0, high=180.0)),
                (0.20, LogNormal(mu=5.8, sigma=0.6, low=180.0, high=3600.0)),
            )
        )
        self._duration_h2 = Mixture(
            (
                (0.05, Uniform(0.05, 1.0)),
                (0.22, LogNormal(mu=3.0, sigma=0.9, low=1.0, high=60.0)),
                (0.43, LogNormal(mu=4.8, sigma=0.5, low=60.0, high=180.0)),
                (0.30, LogNormal(mu=6.0, sigma=0.6, low=180.0, high=3600.0)),
            )
        )

    # ------------------------------------------------------------------ #
    def sample_session(self) -> SessionSpec:
        rng = self.rng
        http2 = rng.random() < self.HTTP2_SHARE
        version = HttpVersion.HTTP_2 if http2 else HttpVersion.HTTP_1_1
        media = rng.random() < self.MEDIA_SESSION_SHARE
        duration = (self._duration_h2 if http2 else self._duration_h1).sample(rng)
        count = self._sample_transaction_count(http2, duration)
        spec = SessionSpec(
            http_version=version,
            target_duration_seconds=duration,
            is_media_session=media,
        )
        for index in range(count):
            spec.transactions.append(self._sample_transaction(media, count, index))
        return spec

    def _sample_transaction_count(self, http2: bool, duration: float) -> int:
        """Figure 3: dominated by 1, sub-5 for most, heavy tail.

        HTTP/2 multiplexes everything over one connection, so it has more
        transactions per session; very short sessions cannot host many.
        """
        rng = self.rng
        if duration < 1.0:
            return 1
        roll = rng.random()
        if http2:
            if roll < 0.52:
                count = 1
            elif roll < 0.76:
                count = rng.randint(2, 4)
            elif roll < 0.94:
                count = rng.randint(5, 49)
            else:
                count = int(self._tail_count_h2.sample(rng))
        else:
            if roll < 0.68:
                count = 1
            elif roll < 0.88:
                count = rng.randint(2, 4)
            elif roll < 0.975:
                count = rng.randint(5, 49)
            else:
                count = int(self._tail_count_h1.sample(rng))
        return max(count, 1)

    def _sample_transaction(
        self, media_session: bool, count: int, index: int
    ) -> TransactionSpec:
        rng = self.rng
        if media_session:
            if rng.random() < 0.09:
                size = self._video_chunk.sample(rng)
                is_media = True
            else:
                size = self._media_response.sample(rng)
                is_media = True
        else:
            size = self._small_response.sample(rng)
            is_media = False
        # Think times make sessions mostly idle (Figure 1(b)): user scroll /
        # interaction gaps dominate transfer times.
        think = self._think_time.sample(rng) if index else 0.0
        return TransactionSpec(
            response_bytes=int(size), think_time_seconds=think, is_media=is_media
        )
