"""Temporal condition events: diurnal congestion, episodes, shifts.

§5 finds that most degradation is diurnal (peak-hour congestion located in
or near destination networks), some is episodic (failures, maintenance),
and a little is continuous. This module generates those behaviours as
*condition modifiers* applied on top of a route's baseline
:class:`~repro.workload.channel.PathState`.

Every event answers one question: at window ``w``, what extra queueing
delay, loss, and capacity reduction does this path experience?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.classification import WINDOWS_PER_DAY

__all__ = [
    "ConditionModifier",
    "TemporalEvent",
    "DiurnalCongestion",
    "EpisodicOutage",
    "ContinuousImpairment",
    "local_hour",
    "activity_level",
]


@dataclass(frozen=True)
class ConditionModifier:
    """Additive/multiplicative adjustments to a path's baseline state."""

    extra_queue_ms: float = 0.0
    extra_loss: float = 0.0
    capacity_factor: float = 1.0
    extra_jitter_ms: float = 0.0

    def combine(self, other: "ConditionModifier") -> "ConditionModifier":
        return ConditionModifier(
            extra_queue_ms=self.extra_queue_ms + other.extra_queue_ms,
            extra_loss=min(self.extra_loss + other.extra_loss, 0.5),
            capacity_factor=self.capacity_factor * other.capacity_factor,
            extra_jitter_ms=self.extra_jitter_ms + other.extra_jitter_ms,
        )


NEUTRAL = ConditionModifier()


def local_hour(window: int, longitude_deg: float) -> float:
    """Local solar hour-of-day for a 15-minute window index."""
    utc_hour = (window % WINDOWS_PER_DAY) * 24.0 / WINDOWS_PER_DAY
    return (utc_hour + longitude_deg / 15.0) % 24.0


#: Hourly user-activity weights (local time): trough ~3–4 am, evening peak
#: ~8–9 pm. An explicit table (rather than a sinusoid) captures the
#: asymmetry of real diurnal curves: a long flat working day and a short
#: deep overnight trough.
_ACTIVITY_BY_HOUR = (
    0.35, 0.25, 0.18, 0.15, 0.15, 0.18,  # 00–05
    0.25, 0.35, 0.45, 0.50, 0.55, 0.60,  # 06–11
    0.65, 0.65, 0.65, 0.65, 0.70, 0.75,  # 12–17
    0.85, 0.95, 1.00, 1.00, 0.80, 0.50,  # 18–23
)


def activity_level(hour: float) -> float:
    """User activity by local hour, in [0.15, 1.0].

    Drives both traffic volume and congestion: evening peaks are when
    access/interconnect congestion bites (§5).
    """
    hour = hour % 24.0
    low = int(hour)
    high = (low + 1) % 24
    frac = hour - low
    return _ACTIVITY_BY_HOUR[low] * (1 - frac) + _ACTIVITY_BY_HOUR[high] * frac


class TemporalEvent:
    """Base class: a modifier as a function of the window index."""

    def modifier_at(self, window: int) -> ConditionModifier:
        raise NotImplementedError


@dataclass(frozen=True)
class DiurnalCongestion(TemporalEvent):
    """Evening congestion at the destination/last mile.

    Severity ramps with local activity above an onset threshold; at full
    peak it contributes a standing queue, loss, and a capacity haircut.
    """

    longitude_deg: float
    peak_queue_ms: float = 15.0
    peak_loss: float = 0.01
    peak_capacity_factor: float = 0.5
    onset: float = 0.75  # activity level where congestion begins

    def modifier_at(self, window: int) -> ConditionModifier:
        level = activity_level(local_hour(window, self.longitude_deg))
        if level <= self.onset:
            return NEUTRAL
        severity = (level - self.onset) / (1.0 - self.onset)
        return ConditionModifier(
            extra_queue_ms=self.peak_queue_ms * severity,
            extra_loss=self.peak_loss * severity,
            capacity_factor=1.0 - (1.0 - self.peak_capacity_factor) * severity,
            extra_jitter_ms=2.0 * severity,
        )


@dataclass(frozen=True)
class EpisodicOutage(TemporalEvent):
    """A one-off impairment spanning ``[start_window, end_window)``.

    Models failures/maintenance: a reroute (latency jump), congestion on a
    backup path (loss + capacity), or both.
    """

    start_window: int
    end_window: int
    queue_ms: float = 25.0
    loss: float = 0.02
    capacity_factor: float = 0.6

    def __post_init__(self) -> None:
        if self.end_window <= self.start_window:
            raise ValueError("outage must span at least one window")

    def modifier_at(self, window: int) -> ConditionModifier:
        if self.start_window <= window < self.end_window:
            return ConditionModifier(
                extra_queue_ms=self.queue_ms,
                extra_loss=self.loss,
                capacity_factor=self.capacity_factor,
            )
        return NEUTRAL


@dataclass(frozen=True)
class ContinuousImpairment(TemporalEvent):
    """A standing impairment over the whole study (e.g. chronic underprovisioning)."""

    queue_ms: float = 10.0
    loss: float = 0.005
    capacity_factor: float = 0.8

    def modifier_at(self, window: int) -> ConditionModifier:
        return ConditionModifier(
            extra_queue_ms=self.queue_ms,
            extra_loss=self.loss,
            capacity_factor=self.capacity_factor,
        )


def combine_events(events: Sequence[TemporalEvent], window: int) -> ConditionModifier:
    """Fold all events' modifiers for one window."""
    modifier = NEUTRAL
    for event in events:
        modifier = modifier.combine(event.modifier_at(window))
    return modifier
