"""Analytic TCP transfer-time channel model.

Converts (session spec, path state) into the instrumented
:class:`~repro.core.records.SessionSample` the analysis pipeline consumes —
the fast counterpart to the packet-level simulator in :mod:`repro.netsim`.
Packet-level simulation of a 10-day global trace is neither feasible nor
necessary: the estimator's behaviour is validated against the packet
simulator (§3.2.3 sweep), and the trace generator only needs transfer
times with the right structure. The model used here:

- per-transaction best case from the same slow-start/bottleneck fluid model
  the paper uses (:func:`repro.core.goodput.model_transfer_time`) at the
  path's effective bottleneck;
- stochastic loss penalties: each lost packet costs roughly a recovery
  round trip (plus an RTO-scale stall when the window was small);
- jitter noise per round trip;
- cwnd evolution across transactions: ideal growth capped by the path BDP,
  halved by loss events, reset after long idle gaps
  (``slow start after idle``);
- MinRTT = propagation + last-mile + standing queue, with the measurement
  noise floor of small-packet samples.

The output records carry Wnic, NIC timestamps, and delayed-ACK-corrected
byte counts exactly as the load balancer would capture them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.core.goodput import ideal_round_trips, ideal_wstart, model_transfer_time
from repro.core.records import SessionSample, TransactionRecord
from repro.workload.sessions import SessionSpec

__all__ = ["ChannelModel", "PathState"]


@dataclass(frozen=True)
class PathState:
    """Network conditions between one client and the serving PoP, for one
    session. Produced by combining geography, the egress route's condition,
    any active congestion events, and the client's access profile."""

    base_rtt_ms: float
    bottleneck_mbps: float
    loss_probability: float = 0.0
    queue_delay_ms: float = 0.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.bottleneck_mbps <= 0:
            raise ValueError("bottleneck_mbps must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")

    @property
    def effective_rtt_seconds(self) -> float:
        """Propagation plus standing queue — what MinRTT converges to."""
        return (self.base_rtt_ms + self.queue_delay_ms) / 1000.0

    @property
    def bottleneck_bytes_per_sec(self) -> float:
        return self.bottleneck_mbps * 1e6 / 8.0


class ChannelModel:
    """Stochastic per-session transfer model."""

    #: Idle gap after which the kernel resets the congestion window
    #: (slow start after idle ≈ one RTO; we use a coarse constant).
    IDLE_RESET_SECONDS = 3.0

    def __init__(
        self,
        rng: random.Random,
        mss_bytes: int = 1500,
        initial_cwnd_packets: int = 10,
    ) -> None:
        self.rng = rng
        self.mss = mss_bytes
        self.initial_cwnd = initial_cwnd_packets * mss_bytes

    # ------------------------------------------------------------------ #
    def simulate_session(
        self,
        spec: SessionSpec,
        path: PathState,
        start_time: float,
        session_id: int = 0,
    ) -> SessionSample:
        """Produce the instrumented sample for one session."""
        rng = self.rng
        rtt = path.effective_rtt_seconds
        rate = path.bottleneck_bytes_per_sec

        records: List[TransactionRecord] = []
        media_sizes: List[int] = []
        cwnd = self.initial_cwnd
        clock = start_time
        busy = 0.0
        min_rtt_sample = rtt  # the handshake seeds MinRTT

        for txn in spec.transactions:
            clock += txn.think_time_seconds
            if txn.think_time_seconds > self.IDLE_RESET_SECONDS:
                cwnd = self.initial_cwnd

            nbytes = max(txn.response_bytes, 1)
            if txn.is_media:
                media_sizes.append(nbytes)
            last_packet = nbytes % self.mss or self.mss
            measured = nbytes - last_packet
            wnic = cwnd

            if measured > 0:
                transfer, losses = self._transfer_time(measured, wnic, rtt, rate, path)
            else:
                transfer, losses = rtt, 0

            first_byte = clock
            ack_time = first_byte + transfer
            last_write = max(first_byte, ack_time - rtt)
            records.append(
                TransactionRecord(
                    first_byte_time=first_byte,
                    ack_time=ack_time,
                    response_bytes=nbytes,
                    last_packet_bytes=last_packet if measured > 0 else nbytes,
                    cwnd_bytes_at_first_byte=wnic,
                    bytes_in_flight_at_start=0,
                    last_byte_write_time=last_write,
                )
            )
            # Whole-transaction wall time includes the final packet + ACK.
            full_time = transfer + (last_packet / rate) + (
                0.0 if measured > 0 else 0.0
            )
            clock = first_byte + max(full_time, transfer)
            busy += max(full_time, transfer)
            cwnd = self._evolve_cwnd(cwnd, nbytes, losses, rtt, rate)

        duration = max(spec.target_duration_seconds, clock - start_time)
        end_time = start_time + duration
        # MinRTT as recorded at close: effective RTT plus a small positive
        # measurement epsilon (jitter means the true floor is rarely hit,
        # but many samples get close).
        observed_min = min_rtt_sample * (1.0 + abs(rng.gauss(0.0, 0.01)))
        return SessionSample(
            session_id=session_id,
            start_time=start_time,
            end_time=end_time,
            http_version=spec.http_version,
            min_rtt_seconds=observed_min,
            bytes_sent=spec.total_response_bytes,
            busy_time_seconds=min(busy, duration),
            transactions=records,
            media_response_sizes=tuple(media_sizes),
        )

    # ------------------------------------------------------------------ #
    def _transfer_time(
        self,
        measured_bytes: int,
        wnic: int,
        rtt: float,
        rate: float,
        path: PathState,
    ) -> tuple:
        """Best-case fluid time plus stochastic loss/jitter penalties.

        Returns ``(transfer_time, loss_events)``.
        """
        rng = self.rng
        base = model_transfer_time(rate, measured_bytes, wnic, rtt)

        packets = max(1, math.ceil(measured_bytes / self.mss))
        losses = self._sample_losses(packets, path.loss_probability)
        penalty = 0.0
        for _ in range(losses):
            # A fast-retransmit recovery costs about one extra round trip;
            # losses in small windows escalate to RTO-scale stalls.
            if wnic <= 4 * self.mss or rng.random() < 0.1:
                penalty += max(0.2, 2.0 * rtt) * rng.uniform(0.8, 1.5)
            else:
                penalty += rtt * rng.uniform(0.8, 1.5)

        if path.jitter_ms > 0:
            rounds = ideal_round_trips(measured_bytes, wnic)
            for _ in range(rounds):
                penalty += abs(rng.gauss(0.0, path.jitter_ms / 1000.0))

        return base + penalty, losses

    def _sample_losses(self, packets: int, p: float) -> int:
        """Binomial(packets, p) via inversion on small n, Poisson tail."""
        if p <= 0.0:
            return 0
        rng = self.rng
        if packets <= 64:
            return sum(1 for _ in range(packets) if rng.random() < p)
        # Poisson approximation for long transfers.
        lam = packets * p
        count, threshold, product = 0, math.exp(-lam), rng.random()
        cumulative = threshold
        while product > cumulative and count < packets:
            count += 1
            threshold *= lam / count
            cumulative += threshold
        return count

    def _evolve_cwnd(
        self, cwnd: int, sent_bytes: int, losses: int, rtt: float, rate: float
    ) -> int:
        """Window state entering the next transaction."""
        if losses > 0:
            reduced = cwnd >> min(losses, 4)
            return max(reduced, self.mss)
        grown = max(cwnd, ideal_wstart(sent_bytes, cwnd))
        # The window cannot usefully exceed the path BDP plus queue room.
        bdp = rate * rtt
        cap = int(max(2.0 * bdp, 4 * self.initial_cwnd))
        return min(grown, cap)
