"""Synthetic workload generation calibrated to the paper's §2.3.

- :mod:`repro.workload.profiles` — per-continent access-network models;
- :mod:`repro.workload.sessions` — session/transaction structure;
- :mod:`repro.workload.channel` — analytic TCP transfer-time model that
  produces instrumented samples;
- :mod:`repro.workload.events` — diurnal/episodic/continuous condition
  events;
- :mod:`repro.workload.scenario` — the end-to-end trace generator.
"""

from repro.workload.calibration import (
    CalibrationResult,
    CalibrationTarget,
    run_calibration,
)
from repro.workload.channel import ChannelModel, PathState
from repro.workload.events import (
    ConditionModifier,
    ContinuousImpairment,
    DiurnalCongestion,
    EpisodicOutage,
    activity_level,
    local_hour,
)
from repro.workload.profiles import (
    AccessClass,
    AccessProfile,
    ContinentProfile,
    default_profiles,
)
from repro.workload.scenario import EdgeScenario, NetworkState, ScenarioConfig
from repro.workload.sessions import SessionSpec, TransactionSpec, WorkloadModel

__all__ = [
    "AccessClass",
    "AccessProfile",
    "CalibrationResult",
    "CalibrationTarget",
    "ChannelModel",
    "run_calibration",
    "ConditionModifier",
    "ContinentProfile",
    "ContinuousImpairment",
    "DiurnalCongestion",
    "EdgeScenario",
    "EpisodicOutage",
    "NetworkState",
    "PathState",
    "ScenarioConfig",
    "SessionSpec",
    "TransactionSpec",
    "WorkloadModel",
    "activity_level",
    "default_profiles",
    "local_hour",
]
