"""Fault-injection harness for the pipeline's failure-model tests.

The paper's methodology (§3.3–3.4) is built to produce *partial but
honest* results when a window's data is missing; this module is how the
reproduction proves it does the same. A :class:`FaultPlan` describes
deterministic faults to inject at the pipeline's I/O and execution
boundaries, and the store reader / shard workers consult it through the
hook functions below. With no plan active every hook is a cheap no-op, so
the instrumentation stays in the hot paths permanently.

Activation, two ways:

- **programmatic** — ``with faultinject.inject(plan): ...`` installs the
  plan for the current process (threads included). This is what the test
  matrix uses with the ``serial``/``thread`` executors.
- **environment** — ``REPRO_FAULTS='{"kill_shard": {...}}'`` (the plan's
  JSON form). Child processes inherit the environment, which is how
  ``ProcessPoolExecutor`` shard workers pick a plan up. Count-limited
  ("times") faults keep their budget *per process* under this mode — a
  transient fault may fire once in every pool worker — so transient-fault
  tests should prefer programmatic activation with in-process executors.

Fault kinds (each an optional field of :class:`FaultPlan`; all are dicts
so the JSON form is the API):

- ``flip_byte`` — ``{"partition": id, "column": name, "offset": n,
  "xor": mask, "times": k|null}``: XOR one byte inside the named column
  block of the named store partition as its payload leaves the disk read.
  ``times`` defaults to null (persistent corruption, like a bad sector).
- ``kill_shard`` — ``{"ordinal": n, "times": k|null, "error":
  "runtime"|"os"}``: raise at shard-worker entry. ``times: k`` makes the
  fault transient (first ``k`` attempts fail, then the shard succeeds —
  the retry path's test); ``times: null`` makes it permanent (the
  quarantine path's test).
- ``io_delay`` — ``{"seconds": s, "path_substr": sub|null}``: sleep
  before opening a matching trace/store file for reading.
- ``io_error`` — ``{"times": k, "path_substr": sub|null}``: raise a
  transient ``OSError`` at a matching read boundary for the first ``k``
  opens.
- ``kill_worker`` — ``{"ordinal": n, "times": k|null}``: raise
  :class:`WorkerKilled` inside a dispatch worker daemon
  (:mod:`repro.dist.daemon`) when it receives the shard task with that
  ordinal. The daemon treats it as its own death: the connection is
  severed without a reply and the daemon stops, so the client must
  reassign the task to a surviving worker (or quarantine it when none
  remain). ``times: k`` limits how many workers die this way.
- ``drop_connection`` — ``{"addr_substr": sub|null, "times": k}``: raise
  ``ConnectionResetError`` in the dispatch *client* just before a task is
  sent to a matching worker address, simulating a network partition. The
  client treats it exactly like a worker death.

Every fired fault increments a ``fault.injected.*`` counter in the
*active* registry (:func:`repro.obs.active_metrics`). These are execution
facts about this run, never data facts — they live outside the
serial-vs-parallel counter-equality invariant, like ``stage.*`` timings.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.obs import active_metrics

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "WorkerKilled",
    "check_connection",
    "check_io",
    "check_shard",
    "check_worker",
    "corrupt_block_payload",
    "current_plan",
    "inject",
    "reset",
]

ENV_VAR = "REPRO_FAULTS"

_ERROR_KINDS = ("runtime", "os")


class WorkerKilled(RuntimeError):
    """A ``kill_worker`` fault fired: the daemon must die, not reply."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject (see module docstring)."""

    flip_byte: Optional[dict] = None
    kill_shard: Optional[dict] = None
    io_delay: Optional[dict] = None
    io_error: Optional[dict] = None
    kill_worker: Optional[dict] = None
    drop_connection: Optional[dict] = None

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(
            {
                field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)
                if getattr(self, field.name) is not None
            }
        )


# --------------------------------------------------------------------- #
# Activation state (process-local; env var crosses process boundaries)
# --------------------------------------------------------------------- #
_PLAN: Optional[FaultPlan] = None
#: (raw env string, parsed plan) — re-parsed only when the env changes.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
#: Budget already consumed per count-limited fault key.
_SPENT: Dict[tuple, int] = {}


def current_plan() -> Optional[FaultPlan]:
    """The active plan: programmatic first, then ``REPRO_FAULTS``."""
    global _ENV_CACHE
    if _PLAN is not None:
        return _PLAN
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return None
    if _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.from_json(raw))
    return _ENV_CACHE[1]


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the current process; restores on exit.

    Count-limited budgets reset on entry and on exit, so nested or
    sequential injections never leak consumed counts into each other.
    """
    global _PLAN
    previous = _PLAN
    previous_spent = dict(_SPENT)
    _PLAN = plan
    _SPENT.clear()
    try:
        yield plan
    finally:
        _PLAN = previous
        _SPENT.clear()
        _SPENT.update(previous_spent)


def reset() -> None:
    """Forget consumed fault budgets and the env-plan cache (test hook)."""
    global _ENV_CACHE
    _SPENT.clear()
    _ENV_CACHE = (None, None)


def _consume(key: tuple, times: Optional[int]) -> bool:
    """True when the fault keyed by ``key`` should fire this call."""
    if times is None:
        return True
    spent = _SPENT.get(key, 0)
    if spent >= times:
        return False
    _SPENT[key] = spent + 1
    return True


def _count(name: str) -> None:
    registry = active_metrics()
    if registry is not None:
        registry.inc(name)


def _matches_path(spec: dict, path) -> bool:
    substr = spec.get("path_substr")
    return substr is None or substr in str(path)


# --------------------------------------------------------------------- #
# Hooks (called from the store reader / trace readers / shard workers)
# --------------------------------------------------------------------- #
def corrupt_block_payload(payload: bytes, partition: dict) -> bytes:
    """Apply the plan's ``flip_byte`` fault to one partition payload."""
    plan = current_plan()
    if plan is None or plan.flip_byte is None:
        return payload
    spec = plan.flip_byte
    if spec.get("partition") != partition["id"]:
        return payload
    column = spec.get("column")
    block = next(
        (b for b in partition["blocks"] if b["column"] == column), None
    )
    if block is None or not block["length"]:
        return payload
    if not _consume(("flip_byte", partition["id"], column), spec.get("times")):
        return payload
    offset = block["offset"] + min(
        int(spec.get("offset", 0)), block["length"] - 1
    )
    mutated = bytearray(payload)
    # A zero mask would be a silent no-op; force a real flip instead.
    mutated[offset] ^= (int(spec.get("xor", 0xFF)) & 0xFF) or 0xFF
    _count("fault.injected.byte_flips")
    return bytes(mutated)


def check_shard(ordinal: int) -> None:
    """Raise the plan's ``kill_shard`` fault at shard-worker entry."""
    plan = current_plan()
    if plan is None or plan.kill_shard is None:
        return
    spec = plan.kill_shard
    if spec.get("ordinal") != ordinal:
        return
    if not _consume(("kill_shard", ordinal), spec.get("times")):
        return
    _count("fault.injected.shard_kills")
    kind = spec.get("error", "runtime")
    if kind not in _ERROR_KINDS:
        raise ValueError(f"kill_shard error kind must be one of {_ERROR_KINDS}")
    message = f"injected fault: shard {ordinal} worker killed"
    if kind == "os":
        raise OSError(message)
    raise RuntimeError(message)


def check_worker(ordinal: int) -> None:
    """Raise the plan's ``kill_worker`` fault at daemon task receipt.

    Called by :class:`repro.dist.daemon.WorkerDaemon` after decoding a
    shard task; a raised :class:`WorkerKilled` makes the daemon sever the
    connection and stop — from the client's side, indistinguishable from
    the worker host dying mid-task.
    """
    plan = current_plan()
    if plan is None or plan.kill_worker is None:
        return
    spec = plan.kill_worker
    if spec.get("ordinal") != ordinal:
        return
    if not _consume(("kill_worker", ordinal), spec.get("times")):
        return
    _count("fault.injected.worker_kills")
    raise WorkerKilled(
        f"injected fault: worker killed while handling shard {ordinal}"
    )


def check_connection(addr: str) -> None:
    """Raise the plan's ``drop_connection`` fault before a task send."""
    plan = current_plan()
    if plan is None or plan.drop_connection is None:
        return
    spec = plan.drop_connection
    substr = spec.get("addr_substr")
    if substr is not None and substr not in str(addr):
        return
    if not _consume(("drop_connection",), spec.get("times", 1)):
        return
    _count("fault.injected.connection_drops")
    raise ConnectionResetError(
        f"injected fault: connection to worker {addr} dropped"
    )


def check_io(path) -> None:
    """Apply ``io_delay`` / ``io_error`` faults at a read boundary."""
    plan = current_plan()
    if plan is None:
        return
    delay = plan.io_delay
    if delay is not None and _matches_path(delay, path):
        if _consume(("io_delay",), delay.get("times")):
            _count("fault.injected.io_delays")
            time.sleep(float(delay.get("seconds", 0.0)))
    error = plan.io_error
    if error is not None and _matches_path(error, path):
        if _consume(("io_error",), error.get("times", 1)):
            _count("fault.injected.io_errors")
            raise OSError(f"injected fault: transient I/O error opening {path}")
