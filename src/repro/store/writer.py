"""Partitioned writer for the binary trace store.

A store is a directory::

    trace.store/
        manifest.json    # schema + partition index (written last, atomically)
        data.bin         # concatenated partition payloads

Samples are bucketed into partitions keyed by ``(PoP, time-window band)``
— a band is ``band_windows`` consecutive aggregation windows — mirroring
how the paper's aggregation tier fans sessions out by PoP and 15-minute
window (§2.2.2, §3.3). Each partition carries min/max statistics
(timestamp range, sequence range, countries) in the manifest so readers
can prune it without touching ``data.bin``.

Durability: ``data.bin`` and ``manifest.json`` are each written to a
temporary file, fsync'd, and renamed into place (manifest last), with the
directory entry fsync'd after each rename (:mod:`repro.fsutil`). An
interrupted write therefore leaves either the previous store intact or a
directory without a valid manifest — never a truncated store that parses
as a short-but-valid trace — and a rename that returned cannot be undone
by a crash.

Integrity: store format v2 records a CRC32 per column block (computed in
:func:`repro.store.schema.encode_rows` over the on-disk bytes), which the
reader verifies before decoding. v1 stores (no checksums) remain readable;
see ``SUPPORTED_STORE_VERSIONS``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.aggregation import window_index
from repro.core.records import SessionSample
from repro.fsutil import atomic_write_bytes
from repro.store.schema import COLUMNS, SCHEMA_VERSION, encode_rows

__all__ = [
    "DEFAULT_BAND_WINDOWS",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "SUPPORTED_STORE_VERSIONS",
    "MANIFEST_NAME",
    "DATA_NAME",
    "TraceStoreWriter",
    "append_to_store",
    "is_store_path",
    "write_store",
]

STORE_FORMAT = "repro-store"
#: v1: original layout. v2: per-block ``crc32`` fields in the manifest.
#: The writer emits the newest version; the reader accepts all of
#: ``SUPPORTED_STORE_VERSIONS`` (a v1 block without a checksum simply
#: skips verification).
STORE_FORMAT_VERSION = 2
SUPPORTED_STORE_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
DATA_NAME = "data.bin"

#: Four 15-minute windows = one-hour partitions by default: coarse enough
#: that partitions clear the per-partition encoding overhead, fine enough
#: that window-range scans prune most of a multi-day trace.
DEFAULT_BAND_WINDOWS = 4

PathLike = Union[str, pathlib.Path]


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    # Module-level indirection kept for tests that monkeypatch the write
    # path; the durable temp+fsync+rename protocol lives in fsutil.
    atomic_write_bytes(path, data)


class TraceStoreWriter:
    """Buffer samples into (PoP, band) partitions; flush on :meth:`close`.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry` receiving
    ``store.rows.written``, ``store.partitions.written``,
    ``store.bytes.written``, and the shared ``io.rows_written`` ledger.
    """

    def __init__(
        self,
        path: PathLike,
        band_windows: int = DEFAULT_BAND_WINDOWS,
        window_seconds: float = 900.0,
        compress: bool = True,
        metrics=None,
    ) -> None:
        if band_windows < 1:
            raise ValueError("band_windows must be >= 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.path = pathlib.Path(path)
        self.band_windows = band_windows
        self.window_seconds = window_seconds
        self.compress = compress
        self.metrics = metrics
        self._buckets: Dict[
            Tuple[str, int], List[Tuple[int, SessionSample]]
        ] = {}
        self._next_seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def band_of(self, sample: SessionSample) -> int:
        """Window band of a sample (keyed by session end, like windows)."""
        return (
            window_index(sample.end_time, self.window_seconds)
            // self.band_windows
        )

    def add(self, sample: SessionSample) -> int:
        """Buffer one sample; returns its sequence number (stream order)."""
        if self._closed:
            raise ValueError("writer is closed")
        seq = self._next_seq
        self._next_seq += 1
        key = (sample.pop, self.band_of(sample))
        self._buckets.setdefault(key, []).append((seq, sample))
        return seq

    def add_all(self, samples: Iterable[SessionSample]) -> int:
        for sample in samples:
            self.add(sample)
        return self._next_seq

    def close(self) -> dict:
        """Encode partitions, write ``data.bin`` then the manifest.

        Returns the manifest dict. Idempotent guard: a closed writer
        rejects further use.
        """
        if self._closed:
            raise ValueError("writer is closed")
        self._closed = True

        payload, partitions = _encode_buckets(
            self._buckets, compress=self.compress
        )

        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_FORMAT_VERSION,
            "schema_version": SCHEMA_VERSION,
            "columns": [
                {"column": name, "encoding": encoding}
                for name, encoding in COLUMNS
            ],
            "row_count": self._next_seq,
            "band_windows": self.band_windows,
            "window_seconds": self.window_seconds,
            "data_file": DATA_NAME,
            "data_bytes": len(payload),
            "partitions": partitions,
        }

        self.path.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.path / DATA_NAME, bytes(payload))
        _atomic_write(
            self.path / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode("utf-8"),
        )

        if self.metrics is not None:
            self.metrics.inc("store.rows.written", self._next_seq)
            self.metrics.inc("store.partitions.written", len(partitions))
            self.metrics.inc("store.bytes.written", len(payload))
            self.metrics.inc("io.rows_written", self._next_seq)
        self._buckets.clear()
        return manifest


def _encode_buckets(
    buckets: Dict[Tuple[str, int], List[Tuple[int, SessionSample]]],
    compress: bool,
    first_part_id: int = 0,
    base_offset: int = 0,
) -> Tuple[bytes, List[dict]]:
    """Encode (PoP, band) buckets into a payload + manifest partition list.

    Deterministic partition order: by first appearance in the stream, so a
    full scan's k-way merge starts near the front of every partition and
    the layout does not depend on dict iteration quirks. ``first_part_id``
    and ``base_offset`` let an append continue an existing manifest's id
    and offset sequences.
    """
    ordered = sorted(buckets.items(), key=lambda item: item[1][0][0])
    payload = bytearray()
    partitions: List[dict] = []
    for part_id, ((pop, band), rows) in enumerate(ordered, start=first_part_id):
        encoded, blocks = encode_rows(rows, compress=compress)
        partitions.append(
            {
                "id": part_id,
                "pop": pop,
                "band": band,
                "rows": len(rows),
                "offset": base_offset + len(payload),
                "length": len(encoded),
                "stats": {
                    "min_seq": rows[0][0],
                    "max_seq": rows[-1][0],
                    "min_end_time": min(s.end_time for _, s in rows),
                    "max_end_time": max(s.end_time for _, s in rows),
                    "countries": sorted(
                        {s.client_country for _, s in rows}
                    ),
                },
                "blocks": blocks,
            }
        )
        payload += encoded
    return bytes(payload), partitions


def write_store(
    path: PathLike,
    samples: Iterable[SessionSample],
    band_windows: int = DEFAULT_BAND_WINDOWS,
    window_seconds: float = 900.0,
    compress: bool = True,
    metrics=None,
) -> int:
    """Write a whole sample stream as a store; returns the row count."""
    writer = TraceStoreWriter(
        path,
        band_windows=band_windows,
        window_seconds=window_seconds,
        compress=compress,
        metrics=metrics,
    )
    count = writer.add_all(samples)
    writer.close()
    return count


def append_to_store(
    path: PathLike,
    samples: Iterable[SessionSample],
    band_windows: int = DEFAULT_BAND_WINDOWS,
    window_seconds: float = 900.0,
    compress: bool = True,
    metrics=None,
) -> int:
    """Append samples to a store as new partitions; returns the row count.

    The incremental-write path for streaming ingest
    (:mod:`repro.pipeline.ingest`): each call packs its samples into fresh
    (PoP, band) partitions whose sequence numbers continue the store's
    ``row_count``, so a full :meth:`~repro.store.TraceStoreReader.scan`
    yields the concatenation of every append in order — byte-identical to
    having written the whole stream at once through a
    :class:`TraceStoreWriter` **when sample (PoP, band) runs don't repeat**;
    in general each append seals its own partitions (the reader's seq-merge
    absorbs duplicates of a (PoP, band) key).

    Durability keeps the writer's manifest-last protocol: new payload bytes
    are appended to ``data.bin`` and fsync'd *before* the manifest is
    atomically replaced. A crash mid-append leaves the previous manifest
    pointing at the previous byte range — the trailing unreferenced bytes
    are invisible to readers and are truncated away by the next successful
    append. Appending to a version-1 store upgrades the manifest to the
    current format version (old blocks simply carry no checksum).

    A missing store is created (even for an empty sample stream, so a
    streaming run's output is always scannable). ``band_windows`` and
    ``window_seconds`` must match the existing manifest — partitions
    banded inconsistently would break pruning.
    """
    path = pathlib.Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        return write_store(
            path,
            samples,
            band_windows=band_windows,
            window_seconds=window_seconds,
            compress=compress,
            metrics=metrics,
        )

    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != STORE_FORMAT:
        raise ValueError(
            f"{manifest_path}: unrecognized format {manifest.get('format')!r}"
        )
    if manifest.get("version") not in SUPPORTED_STORE_VERSIONS:
        raise ValueError(
            f"{manifest_path}: unsupported store version "
            f"{manifest.get('version')!r}"
        )
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{manifest_path}: schema version "
            f"{manifest.get('schema_version')!r} != writer's {SCHEMA_VERSION}"
        )
    if manifest.get("band_windows") != band_windows:
        raise ValueError(
            f"band_windows {band_windows} does not match the store's "
            f"{manifest.get('band_windows')}"
        )
    if manifest.get("window_seconds") != window_seconds:
        raise ValueError(
            f"window_seconds {window_seconds} does not match the store's "
            f"{manifest.get('window_seconds')}"
        )

    writer = TraceStoreWriter(
        path,
        band_windows=band_windows,
        window_seconds=window_seconds,
        compress=compress,
    )
    writer._next_seq = int(manifest["row_count"])
    first_seq = writer._next_seq
    count = writer.add_all(samples) - first_seq
    writer._closed = True  # bucketed by hand; never .close() this writer
    if count == 0:
        return 0

    base_offset = int(manifest["data_bytes"])
    payload, partitions = _encode_buckets(
        writer._buckets,
        compress=compress,
        first_part_id=len(manifest["partitions"]),
        base_offset=base_offset,
    )

    data_path = path / manifest.get("data_file", DATA_NAME)
    with open(data_path, "r+b") as handle:
        # Discard unreferenced tail bytes a crashed append may have left,
        # so the manifest's offsets stay the single source of truth.
        handle.truncate(base_offset)
        handle.seek(base_offset)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())

    manifest["version"] = STORE_FORMAT_VERSION
    manifest["row_count"] = first_seq + count
    manifest["data_bytes"] = base_offset + len(payload)
    manifest["partitions"] = list(manifest["partitions"]) + partitions
    # Crash safety requires rewriting the whole manifest atomically, so
    # each append costs O(total partitions) serialization. Fine-grained
    # appenders (one call per sealed window) should batch windows or
    # accept the cost for modest stores; see DESIGN.md on the streaming
    # seal path.
    _atomic_write(
        manifest_path, json.dumps(manifest, indent=1).encode("utf-8")
    )

    if metrics is not None:
        metrics.inc("store.rows.written", count)
        metrics.inc("store.partitions.written", len(partitions))
        metrics.inc("store.bytes.written", len(payload))
        metrics.inc("io.rows_written", count)
    return count


def is_store_path(path: PathLike) -> bool:
    """True when ``path`` is (or names) a trace-store directory."""
    path = pathlib.Path(path)
    if (path / MANIFEST_NAME).is_file():
        return True
    return path.suffix == ".store" and not path.is_file()
