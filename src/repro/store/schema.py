"""Columnar schema of the trace store: SessionSample <-> column blocks.

One partition holds ``(seq, sample)`` rows — ``seq`` is the sample's
position in the original stream, which is what lets readers reconstruct
the exact serial order across partitions. The schema shreds every
:class:`~repro.core.records.SessionSample` field (including the nested
route and transaction records) into flat columns:

- nested lists (transactions, AS paths, media sizes) become a per-row
  length column plus flattened child columns;
- optional values (route, ``last_byte_write_time``) become a presence
  bitmap plus child columns holding only the present rows.

``SCHEMA_VERSION`` pins the column set and each column's encoding; a
reader refuses a manifest whose schema version it does not know, so a
future column change bumps the version instead of silently misdecoding.

Decoding constructs records through ``__new__`` and fills ``__dict__``
directly, skipping ``__post_init__`` validation: store payloads were
validated when the original dataclasses were built at write time, and the
whole point of the binary path is to avoid re-paying per-row Python cost.
(JSONL stays the validating, interchange-friendly format.)
"""

from __future__ import annotations

import gc
import struct
import zlib
from typing import Dict, List, Tuple

from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
)
from repro.store.encoding import (
    block_checksum,
    compress_block,
    decode_bitmap,
    decode_delta_varints,
    decode_f64,
    decode_i64,
    decode_string_dict,
    decode_varints,
    decompress_block,
    encode_bitmap,
    encode_delta_varints,
    encode_f64,
    encode_i64,
    encode_string_dict,
    encode_varints,
)
from repro.store.errors import ColumnDecodeError

__all__ = [
    "SCHEMA_VERSION",
    "COLUMNS",
    "encode_rows",
    "decode_columns",
    "decode_rows",
]

SCHEMA_VERSION = 1

#: Column name -> encoding, in block order. The manifest records this per
#: store so an inspector can read the layout without the code.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("seq", "dvarint"),
    ("session_id", "i64"),
    ("start_time", "f64"),
    ("end_time", "f64"),
    ("http_version", "strdict"),
    ("min_rtt_seconds", "f64"),
    ("bytes_sent", "i64"),
    ("busy_time_seconds", "f64"),
    ("pop", "strdict"),
    ("client_country", "strdict"),
    ("client_continent", "strdict"),
    ("client_ip_is_hosting", "bitmap"),
    ("geo_tag", "strdict"),
    ("media_lens", "varint"),
    ("media_values", "i64"),
    ("route_present", "bitmap"),
    ("route_prefix", "strdict"),
    ("route_relationship", "strdict"),
    ("route_rank", "varint"),
    ("route_prepended", "bitmap"),
    ("route_aspath_lens", "varint"),
    ("route_aspath_values", "i64"),
    ("txn_lens", "varint"),
    ("txn_first_byte_time", "f64"),
    ("txn_ack_time", "f64"),
    ("txn_response_bytes", "i64"),
    ("txn_last_packet_bytes", "i64"),
    ("txn_cwnd", "i64"),
    ("txn_inflight", "i64"),
    ("txn_coalesced", "varint"),
    ("txn_lbwt_present", "bitmap"),
    ("txn_lbwt_values", "f64"),
)

_ENCODERS = {
    "f64": encode_f64,
    "i64": encode_i64,
    "varint": encode_varints,
    "dvarint": encode_delta_varints,
    "bitmap": encode_bitmap,
    "strdict": encode_string_dict,
}

_DECODERS = {
    "f64": decode_f64,
    "i64": decode_i64,
    "varint": decode_varints,
    "dvarint": decode_delta_varints,
    "bitmap": decode_bitmap,
    "strdict": decode_string_dict,
}


def encode_rows(
    rows: List[Tuple[int, SessionSample]], compress: bool = True
) -> Tuple[bytes, List[dict]]:
    """Shred ``(seq, sample)`` rows into one partition payload.

    Returns the concatenated block bytes and the per-block metadata
    (column, relative offset, length, codec) the manifest records.
    """
    columns: Dict[str, list] = {name: [] for name, _ in COLUMNS}
    for seq, sample in rows:
        columns["seq"].append(seq)
        columns["session_id"].append(sample.session_id)
        columns["start_time"].append(sample.start_time)
        columns["end_time"].append(sample.end_time)
        columns["http_version"].append(sample.http_version.value)
        columns["min_rtt_seconds"].append(sample.min_rtt_seconds)
        columns["bytes_sent"].append(sample.bytes_sent)
        columns["busy_time_seconds"].append(sample.busy_time_seconds)
        columns["pop"].append(sample.pop)
        columns["client_country"].append(sample.client_country)
        columns["client_continent"].append(sample.client_continent)
        columns["client_ip_is_hosting"].append(sample.client_ip_is_hosting)
        columns["geo_tag"].append(sample.geo_tag)
        columns["media_lens"].append(len(sample.media_response_sizes))
        columns["media_values"].extend(sample.media_response_sizes)
        route = sample.route
        columns["route_present"].append(route is not None)
        if route is not None:
            columns["route_prefix"].append(route.prefix)
            columns["route_relationship"].append(route.relationship.value)
            columns["route_rank"].append(route.preference_rank)
            columns["route_prepended"].append(route.prepended)
            columns["route_aspath_lens"].append(len(route.as_path))
            columns["route_aspath_values"].extend(route.as_path)
        columns["txn_lens"].append(len(sample.transactions))
        for txn in sample.transactions:
            columns["txn_first_byte_time"].append(txn.first_byte_time)
            columns["txn_ack_time"].append(txn.ack_time)
            columns["txn_response_bytes"].append(txn.response_bytes)
            columns["txn_last_packet_bytes"].append(txn.last_packet_bytes)
            columns["txn_cwnd"].append(txn.cwnd_bytes_at_first_byte)
            columns["txn_inflight"].append(txn.bytes_in_flight_at_start)
            columns["txn_coalesced"].append(txn.coalesced_count)
            present = txn.last_byte_write_time is not None
            columns["txn_lbwt_present"].append(present)
            if present:
                columns["txn_lbwt_values"].append(txn.last_byte_write_time)

    payload = bytearray()
    blocks: List[dict] = []
    for name, encoding in COLUMNS:
        raw = _ENCODERS[encoding](columns[name])
        data, codec = compress_block(raw, compress)
        blocks.append(
            {
                "column": name,
                "offset": len(payload),
                "length": len(data),
                "codec": codec,
                "crc32": block_checksum(data),
            }
        )
        payload += data
    return bytes(payload), blocks


def _new_route(
    prefix: str,
    as_path: Tuple[int, ...],
    relationship: Relationship,
    rank: int,
    prepended: bool,
) -> RouteInfo:
    route = RouteInfo.__new__(RouteInfo)
    route.__dict__.update(
        prefix=prefix,
        as_path=as_path,
        relationship=relationship,
        preference_rank=rank,
        prepended=prepended,
    )
    return route


_HTTP_BY_VALUE = {member.value: member for member in HttpVersion}
_RELATIONSHIP_BY_VALUE = {member.value: member for member in Relationship}


def decode_rows(
    payload: bytes, blocks: List[dict]
) -> List[Tuple[int, SessionSample]]:
    """Inverse of :func:`encode_rows`; rows come back in stored order."""
    # Pause cyclic GC for the allocation burst: every object built here is
    # reachable from ``rows`` and none form cycles, so collector passes
    # triggered mid-decode scan a growing heap for nothing (~25% of the
    # decode on a large partition).
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _decode_rows(payload, blocks)
    finally:
        if gc_was_enabled:
            gc.enable()


def decode_columns(payload: bytes, blocks: List[dict]) -> Dict[str, list]:
    """Decode a partition payload into the schema's flat column lists.

    The first phase of :func:`decode_rows`, exposed on its own for the
    batch engine's column fast path
    (:meth:`repro.store.TraceStoreReader.decode_partition_columns`): the
    blocks are decompressed and decoded with per-column error attribution
    (:class:`ColumnDecodeError`), but no row objects are assembled.
    """
    view = memoryview(payload)
    encodings = dict(COLUMNS)
    decoded: Dict[str, list] = {}
    for block in blocks:
        name = block["column"]
        encoding = encodings.get(name)
        if encoding is None:
            raise ColumnDecodeError(name, "not a schema column")
        try:
            raw = decompress_block(
                bytes(
                    view[block["offset"] : block["offset"] + block["length"]]
                ),
                block["codec"],
            )
            decoded[name] = _DECODERS[encoding](raw)
        except ColumnDecodeError:
            raise
        except (struct.error, zlib.error, ValueError) as error:
            # Attribute the failure to the column; the reader adds the
            # partition and file-offset context only it knows.
            raise ColumnDecodeError(name, str(error)) from error
    missing = [name for name, _ in COLUMNS if name not in decoded]
    if missing:
        raise ColumnDecodeError(missing[0], "column block missing")
    return decoded


def _decode_rows(
    payload: bytes, blocks: List[dict]
) -> List[Tuple[int, SessionSample]]:
    decoded = decode_columns(payload, blocks)

    # Enum lookup tables beat Enum.__call__ in the per-row loop.
    http_versions = list(
        map(_HTTP_BY_VALUE.__getitem__, decoded["http_version"])
    )
    # The route cache key keeps the relationship as its dictionary *string*
    # (1:1 with the enum member, but hashed at C speed); the enum is looked
    # up once per distinct route on the construction path.
    relationships = decoded["route_relationship"]
    # Identical routes repeat across a partition's rows; intern them so the
    # decode loop pays one RouteInfo construction per distinct route.
    route_cache: Dict[tuple, RouteInfo] = {}

    # Bind every column to a local: the row loop below runs per sample and
    # per transaction, where dict lookups would dominate the decode.
    seqs = decoded["seq"]
    session_ids = decoded["session_id"]
    start_times = decoded["start_time"]
    end_times = decoded["end_time"]
    min_rtts = decoded["min_rtt_seconds"]
    bytes_sents = decoded["bytes_sent"]
    busy_times = decoded["busy_time_seconds"]
    pops = decoded["pop"]
    countries = decoded["client_country"]
    continents = decoded["client_continent"]
    hostings = decoded["client_ip_is_hosting"]
    geo_tags = decoded["geo_tag"]
    media_lens = decoded["media_lens"]
    media_values = decoded["media_values"]
    route_presents = decoded["route_present"]
    route_prefixes = decoded["route_prefix"]
    route_ranks = decoded["route_rank"]
    route_prepends = decoded["route_prepended"]
    aspath_lens = decoded["route_aspath_lens"]
    aspath_values = decoded["route_aspath_values"]
    txn_lens = decoded["txn_lens"]
    # One zipped cursor over the transaction columns: a single C-level
    # next()+unpack per transaction instead of eight list indexings.
    next_txn_row = zip(
        decoded["txn_first_byte_time"],
        decoded["txn_ack_time"],
        decoded["txn_response_bytes"],
        decoded["txn_last_packet_bytes"],
        decoded["txn_cwnd"],
        decoded["txn_inflight"],
        decoded["txn_coalesced"],
        decoded["txn_lbwt_present"],
    ).__next__
    next_lbwt = iter(decoded["txn_lbwt_values"]).__next__
    new_sample = SessionSample.__new__
    new_txn = TransactionRecord.__new__

    rows: List[Tuple[int, SessionSample]] = []
    append_row = rows.append
    route_cursor = 0
    aspath_cursor = 0
    media_cursor = 0
    # One zip over all per-sample columns: sequential iteration beats
    # per-row list indexing, and building each record's __dict__ as a
    # literal beats dict.update on an empty one.
    for (
        seq,
        session_id,
        start_time,
        end_time,
        http_version,
        min_rtt,
        sent,
        busy_time,
        pop,
        country,
        continent,
        hosting,
        geo_tag,
        media_len,
        route_present,
        txn_len,
    ) in zip(
        seqs,
        session_ids,
        start_times,
        end_times,
        http_versions,
        min_rtts,
        bytes_sents,
        busy_times,
        pops,
        countries,
        continents,
        hostings,
        geo_tags,
        media_lens,
        route_presents,
        txn_lens,
    ):
        route = None
        if route_present:
            aspath_len = aspath_lens[route_cursor]
            as_path = tuple(
                aspath_values[aspath_cursor : aspath_cursor + aspath_len]
            )
            aspath_cursor += aspath_len
            key = (
                route_prefixes[route_cursor],
                as_path,
                relationships[route_cursor],
                route_ranks[route_cursor],
                route_prepends[route_cursor],
            )
            route = route_cache.get(key)
            if route is None:
                route = route_cache[key] = _new_route(
                    key[0],
                    as_path,
                    _RELATIONSHIP_BY_VALUE[key[2]],
                    key[3],
                    key[4],
                )
            route_cursor += 1

        transactions = []
        for _ in range(txn_len):
            fbt, ack, response, last, cwnd, inflight, coalesced, has_lbwt = (
                next_txn_row()
            )
            txn = new_txn(TransactionRecord)
            # TransactionRecord is frozen: updating the (empty) __dict__ in
            # place is the one write path its __setattr__ cannot veto.
            txn.__dict__.update(
                first_byte_time=fbt,
                ack_time=ack,
                response_bytes=response,
                last_packet_bytes=last,
                cwnd_bytes_at_first_byte=cwnd,
                bytes_in_flight_at_start=inflight,
                coalesced_count=coalesced,
                last_byte_write_time=next_lbwt() if has_lbwt else None,
            )
            transactions.append(txn)

        if media_len:
            media = tuple(
                media_values[media_cursor : media_cursor + media_len]
            )
            media_cursor += media_len
        else:
            media = ()

        sample = new_sample(SessionSample)
        sample.__dict__ = {
            "session_id": session_id,
            "start_time": start_time,
            "end_time": end_time,
            "http_version": http_version,
            "min_rtt_seconds": min_rtt,
            "bytes_sent": sent,
            "busy_time_seconds": busy_time,
            "transactions": transactions,
            "route": route,
            "pop": pop,
            "client_country": country,
            "client_continent": continent,
            "client_ip_is_hosting": hosting,
            "geo_tag": geo_tag,
            "media_response_sizes": media,
        }
        append_row((seq, sample))
    return rows
