"""Manifest-driven reader: partition pruning and shard-aligned scans.

:class:`TraceStoreReader` decides which partitions to decode from the JSON
manifest alone — a :class:`ScanFilter` on PoPs, countries, or a session
end-time range prunes whole partitions before a single data byte is read
(predicate pushdown). What does get decoded is merged back into exact
stream order by the samples' sequence column, so a full scan of a store
yields the *identical* sample sequence the original JSONL trace held.

For parallel ingestion, :meth:`TraceStoreReader.plan_chunks` groups
partitions into :class:`StoreChunk` units that plug into the sharded
pipeline's planner (:mod:`repro.pipeline.parallel`): every worker decodes
a disjoint set of partitions with one contiguous read each, and the
pipeline's order-key merge restores global order. Within a chunk, rows
still come out in sequence order (a sorted-run merge over the chunk's
partitions); across chunks the sequence ranges may interleave, which the
pipeline's sort-by-order-key merge absorbs — all derived statistics are
order statistics or integer sums, so results stay byte-identical to the
serial pass (asserted by ``tests/test_store_pipeline.py``).

Integrity: every block read is CRC32-verified against the manifest before
its decoder runs (store format v2; v1 blocks carry no checksum and skip
the check). Damage raises a typed :class:`~repro.store.errors.StoreError`
subclass naming the partition, column, and absolute byte range — never a
bare ``struct.error`` — and :func:`verify_store` scans a whole store and
*reports* findings instead of raising, for ``repro verify-store``.

Observability (all data-fact counters, subject to the serial-vs-parallel
counter-equality invariant):

- ``store.partitions.scanned`` / ``store.partitions.pruned``
- ``store.bytes.read`` / ``store.bytes.skipped``
- ``store.rows.decoded``
- ``store.blocks.verified`` / ``store.blocks.unverified`` (v1 blocks)
- plus the shared ``io.rows_read`` ledger per yielded sample.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro import faultinject
from repro.core.records import SessionSample
from repro.store.encoding import block_checksum
from repro.store.errors import (
    ColumnDecodeError,
    CorruptBlockError,
    CorruptManifestError,
    StoreError,
    TruncatedPartitionError,
)
from repro.store.schema import SCHEMA_VERSION, decode_columns, decode_rows
from repro.store.writer import (
    DATA_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    SUPPORTED_STORE_VERSIONS,
)

__all__ = [
    "ScanFilter",
    "StoreChunk",
    "StoreVerifyFinding",
    "StoreVerifyReport",
    "TraceStoreReader",
    "read_store_chunk",
    "verify_store",
]

PathLike = Union[str, pathlib.Path]


def _as_frozenset(values) -> Optional[frozenset]:
    if values is None:
        return None
    if isinstance(values, str):
        return frozenset((values,))
    return frozenset(values)


@dataclass(frozen=True)
class ScanFilter:
    """Predicate pushed down to the partition manifest.

    ``None`` fields match everything. Time bounds are inclusive and apply
    to the session *end* time (the same timestamp that keys windows and
    partition bands).
    """

    pops: Optional[frozenset] = None
    countries: Optional[frozenset] = None
    min_end_time: Optional[float] = None
    max_end_time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pops", _as_frozenset(self.pops))
        object.__setattr__(self, "countries", _as_frozenset(self.countries))

    def admits_partition(self, partition: dict) -> bool:
        """Can this partition contain a matching row? (Manifest-only.)"""
        if self.pops is not None and partition["pop"] not in self.pops:
            return False
        stats = partition["stats"]
        if self.countries is not None and not self.countries.intersection(
            stats["countries"]
        ):
            return False
        if (
            self.min_end_time is not None
            and stats["max_end_time"] < self.min_end_time
        ):
            return False
        if (
            self.max_end_time is not None
            and stats["min_end_time"] > self.max_end_time
        ):
            return False
        return True

    def admits_sample(self, sample: SessionSample) -> bool:
        """Row-level predicate (partition stats are necessarily coarse)."""
        if self.pops is not None and sample.pop not in self.pops:
            return False
        if (
            self.countries is not None
            and sample.client_country not in self.countries
        ):
            return False
        if self.min_end_time is not None and sample.end_time < self.min_end_time:
            return False
        if self.max_end_time is not None and sample.end_time > self.max_end_time:
            return False
        return True


@dataclass(frozen=True)
class StoreChunk:
    """A worker's unit of store input: a disjoint set of partitions.

    ``ordinal`` is the smallest sequence number in the chunk, which orders
    chunks against each other the same way byte offsets order JSONL
    chunks; :func:`read_store_chunk` yields ``(seq, sample)`` pairs whose
    keys extend that ordering, satisfying the
    :class:`repro.pipeline.io.TraceChunk` order-key contract.
    """

    path: str
    ordinal: int
    partition_ids: Tuple[int, ...]
    #: Total manifest row count of the chunk's partitions. Lets the
    #: pipeline's degraded ledger report exactly how many samples a
    #: quarantined store shard lost (0 = unknown, for hand-built chunks).
    rows: int = 0


class TraceStoreReader:
    """Read a partitioned columnar trace store written by
    :class:`repro.store.writer.TraceStoreWriter`."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{self.path}: not a trace store (missing {MANIFEST_NAME}; "
                "an interrupted write leaves no manifest on purpose)"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CorruptManifestError(manifest_path, str(error)) from error
        if not isinstance(manifest, dict):
            raise CorruptManifestError(manifest_path, "not a JSON object")
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{manifest_path}: unrecognized format "
                f"{manifest.get('format')!r}"
            )
        if manifest.get("version") not in SUPPORTED_STORE_VERSIONS:
            raise StoreError(
                f"{manifest_path}: unsupported store version "
                f"{manifest.get('version')!r} (reader supports "
                f"{SUPPORTED_STORE_VERSIONS})"
            )
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise StoreError(
                f"{manifest_path}: unsupported schema version "
                f"{manifest.get('schema_version')!r} (reader supports "
                f"{SCHEMA_VERSION})"
            )
        self.manifest = manifest
        self.data_path = self.path / manifest.get("data_file", DATA_NAME)

    # ------------------------------------------------------------------ #
    @property
    def row_count(self) -> int:
        return self.manifest["row_count"]

    @property
    def partitions(self) -> List[dict]:
        return self.manifest["partitions"]

    def partition(self, part_id: int) -> dict:
        for partition in self.partitions:
            if partition["id"] == part_id:
                return partition
        raise KeyError(f"no partition {part_id} in {self.path}")

    # ------------------------------------------------------------------ #
    def decode_partition(
        self, partition: dict, metrics=None
    ) -> List[Tuple[int, SessionSample]]:
        """Read, verify, and decode one partition (one contiguous read).

        Raises :class:`TruncatedPartitionError` when the data file ends
        inside the partition, and :class:`CorruptBlockError` (naming the
        partition, column, and absolute byte range) when a block fails its
        CRC32 check or its decode.
        """
        payload = self._read_partition_payload(partition)
        self._verify_blocks(payload, partition, metrics)
        try:
            rows = decode_rows(payload, partition["blocks"])
        except ColumnDecodeError as error:
            raise self._block_error(
                partition, error.column, error.detail
            ) from error
        except (IndexError, KeyError, StopIteration) as error:
            # Row-assembly failures (cursor overruns, short child columns):
            # the payload is internally inconsistent even though every
            # block decoded — attribute to the partition as a whole.
            raise self._block_error(
                partition, None, f"row assembly failed ({error!r})"
            ) from error
        if metrics is not None:
            metrics.inc("store.partitions.scanned")
            metrics.inc("store.bytes.read", partition["length"])
            metrics.inc("store.rows.decoded", len(rows))
        return rows

    def decode_partition_columns(self, partition: dict, metrics=None):
        """Column fast path: one partition as a :class:`ColumnBatch`.

        Same read, CRC verification, typed error attribution, and counters
        as :meth:`decode_partition` — but the decoded columns are handed to
        the batch engine directly instead of being assembled into
        ``SessionSample`` rows. ``io.rows_read`` is counted here per
        decoded row, so a column scan's ledger matches a row scan's.
        """
        from repro.kernels.columns import ColumnBatch

        payload = self._read_partition_payload(partition)
        self._verify_blocks(payload, partition, metrics)
        try:
            decoded = decode_columns(payload, partition["blocks"])
            batch = ColumnBatch.from_store_columns(decoded)
        except ColumnDecodeError as error:
            raise self._block_error(
                partition, error.column, error.detail
            ) from error
        except (IndexError, KeyError, StopIteration) as error:
            # Column assembly failures (cursor overruns, short child
            # columns): same attribution rule as the row decoder.
            raise self._block_error(
                partition, None, f"row assembly failed ({error!r})"
            ) from error
        if metrics is not None:
            metrics.inc("store.partitions.scanned")
            metrics.inc("store.bytes.read", partition["length"])
            metrics.inc("store.rows.decoded", len(batch))
            if len(batch):
                metrics.inc("io.rows_read", len(batch))
        return batch

    def read_column_batches(
        self,
        metrics=None,
        partition_ids: Optional[Iterable[int]] = None,
    ):
        """Yield one :class:`ColumnBatch` per partition, in manifest order.

        ``partition_ids`` restricts the scan (the shard-aligned path).
        Batches carry the store's ``seq`` column as their order keys, so a
        consumer that sorts on them reconstructs exact stream order — the
        same contract :meth:`scan_pairs` satisfies row by row.
        """
        candidates = self.partitions
        if partition_ids is not None:
            wanted = set(partition_ids)
            candidates = [p for p in candidates if p["id"] in wanted]
        for partition in candidates:
            yield self.decode_partition_columns(partition, metrics)

    def _read_partition_payload(self, partition: dict) -> bytes:
        faultinject.check_io(self.data_path)
        try:
            with open(self.data_path, "rb") as handle:
                handle.seek(partition["offset"])
                payload = handle.read(partition["length"])
        except FileNotFoundError:
            raise StoreError(
                f"{self.path}: data file {self.data_path.name} is missing "
                f"but the manifest references partition {partition['id']}"
            ) from None
        if len(payload) != partition["length"]:
            raise TruncatedPartitionError(
                self.data_path,
                partition["id"],
                partition["length"],
                len(payload),
            )
        return faultinject.corrupt_block_payload(payload, partition)

    def _verify_blocks(
        self, payload: bytes, partition: dict, metrics=None
    ) -> None:
        """CRC-check every block against the manifest before decoding."""
        view = memoryview(payload)
        for block in partition["blocks"]:
            expected = block.get("crc32")
            if expected is None:
                # v1 store: blocks predate checksums.
                if metrics is not None:
                    metrics.inc("store.blocks.unverified")
                continue
            actual = block_checksum(
                bytes(view[block["offset"] : block["offset"] + block["length"]])
            )
            if actual != expected:
                raise self._block_error(
                    partition,
                    block["column"],
                    f"crc32 mismatch (manifest {expected:#010x}, "
                    f"data {actual:#010x})",
                )
            if metrics is not None:
                metrics.inc("store.blocks.verified")

    def _block_error(
        self, partition: dict, column: Optional[str], detail: str
    ) -> CorruptBlockError:
        offset = length = None
        if column is not None:
            block = next(
                (b for b in partition["blocks"] if b["column"] == column),
                None,
            )
            if block is not None:
                offset = partition["offset"] + block["offset"]
                length = block["length"]
        return CorruptBlockError(
            self.data_path, partition["id"], column, offset, length, detail
        )

    def _merged_pairs(
        self, partitions: Sequence[dict], metrics=None
    ) -> List[Tuple[int, SessionSample]]:
        """Merge partitions back into global sequence order.

        Each partition is internally seq-sorted, so this is a merge of
        sorted runs — which is exactly the case timsort detects, making a
        concatenate-and-sort both simpler and faster than a Python-level
        k-way heap merge.
        """
        rows: List[Tuple[int, SessionSample]] = []
        for partition in partitions:
            rows.extend(self.decode_partition(partition, metrics))
        if len(partitions) > 1:
            rows.sort(key=itemgetter(0))
        return rows

    def scan_pairs(
        self,
        scan_filter: Optional[ScanFilter] = None,
        metrics=None,
        partition_ids: Optional[Iterable[int]] = None,
    ) -> Iterator[Tuple[int, SessionSample]]:
        """Yield ``(seq, sample)`` in sequence order, pruning via the
        manifest; ``partition_ids`` restricts the scan to those partitions
        (the shard-aligned path) before the filter applies."""
        candidates = self.partitions
        if partition_ids is not None:
            wanted = set(partition_ids)
            candidates = [p for p in candidates if p["id"] in wanted]
        if scan_filter is None:
            selected = list(candidates)
        else:
            selected = []
            for partition in candidates:
                if scan_filter.admits_partition(partition):
                    selected.append(partition)
                elif metrics is not None:
                    metrics.inc("store.partitions.pruned")
                    metrics.inc("store.bytes.skipped", partition["length"])
        rows = self._merged_pairs(selected, metrics)
        if scan_filter is not None:
            admits = scan_filter.admits_sample
            rows = [pair for pair in rows if admits(pair[1])]
        if metrics is None:
            # Fast path: no per-row accounting, hand the rows straight out.
            yield from rows
            return
        inc = metrics.inc
        for pair in rows:
            inc("io.rows_read")
            yield pair

    def scan(
        self, scan_filter: Optional[ScanFilter] = None, metrics=None
    ) -> Iterator[SessionSample]:
        """Iterate matching samples in exact original stream order.

        Returns a lazy iterator (``scan_pairs`` is a generator, so nothing
        is read until the first item is pulled); the C-level ``map`` avoids
        a per-row generator frame of its own.
        """
        return map(itemgetter(1), self.scan_pairs(scan_filter, metrics))

    # ------------------------------------------------------------------ #
    def plan_chunks(self, num_chunks: int) -> List[StoreChunk]:
        """Group partitions into up to ``num_chunks`` disjoint chunks.

        Partitions are kept in manifest order (first-appearance order, so
        consecutive partitions cover nearby sequence ranges) and split into
        contiguous runs balanced by row count. Concatenating the chunks'
        partitions reproduces the whole store. ``num_chunks`` above the
        partition count collapses to one chunk per partition (a partition
        is the smallest contiguous-read unit), so no empty chunks are ever
        planned.
        """
        if num_chunks <= 0:
            raise ValueError("num_chunks must be positive")
        partitions = self.partitions
        if not partitions:
            return []
        # Collapse over-sharding: a partition is the smallest contiguous
        # read unit, so more chunks than partitions degenerates to exactly
        # one chunk per partition (never fewer — the balancer below could
        # otherwise merge small partitions and under-fill the plan).
        if num_chunks >= len(partitions):
            return [self._chunk_of([p]) for p in partitions]
        total_rows = sum(p["rows"] for p in partitions)
        chunks: List[StoreChunk] = []
        run: List[dict] = []
        run_rows = 0
        remaining_chunks = num_chunks
        remaining_rows = total_rows
        for partition in partitions:
            run.append(partition)
            run_rows += partition["rows"]
            target = remaining_rows / remaining_chunks
            if run_rows >= target and remaining_chunks > 1:
                chunks.append(self._chunk_of(run))
                remaining_rows -= run_rows
                remaining_chunks -= 1
                run, run_rows = [], 0
        if run:
            chunks.append(self._chunk_of(run))
        return chunks

    def _chunk_of(self, partitions: Sequence[dict]) -> StoreChunk:
        return StoreChunk(
            path=str(self.path),
            ordinal=min(p["stats"]["min_seq"] for p in partitions),
            partition_ids=tuple(p["id"] for p in partitions),
            rows=sum(p["rows"] for p in partitions),
        )

    # ------------------------------------------------------------------ #
    def verify(self, metrics=None) -> List["StoreVerifyFinding"]:
        """Scan every partition for corruption; returns findings, raises
        nothing.

        Checks, per partition: payload present and full-length, every
        block's CRC32, a clean decode, and the decoded row count against
        the manifest. Also checks the data file's total size against the
        manifest's ``data_bytes``. An empty list means the store is clean.
        """
        findings: List[StoreVerifyFinding] = []
        try:
            size = self.data_path.stat().st_size
        except FileNotFoundError:
            return [
                StoreVerifyFinding(
                    partition_id=None,
                    column=None,
                    offset=None,
                    error=f"data file {self.data_path.name} is missing",
                )
            ]
        expected_bytes = self.manifest.get("data_bytes")
        if expected_bytes is not None and size != expected_bytes:
            findings.append(
                StoreVerifyFinding(
                    partition_id=None,
                    column=None,
                    offset=None,
                    error=(
                        f"data file is {size} bytes; manifest expects "
                        f"{expected_bytes}"
                    ),
                )
            )
        for partition in self.partitions:
            findings.extend(self._verify_partition(partition, metrics))
        return findings

    def _verify_partition(
        self, partition: dict, metrics=None
    ) -> List["StoreVerifyFinding"]:
        try:
            payload = self._read_partition_payload(partition)
        except StoreError as error:
            return [
                StoreVerifyFinding(
                    partition_id=partition["id"],
                    column=None,
                    offset=partition["offset"],
                    error=str(error),
                )
            ]
        findings: List[StoreVerifyFinding] = []
        view = memoryview(payload)
        for block in partition["blocks"]:
            expected = block.get("crc32")
            if expected is None:
                continue
            actual = block_checksum(
                bytes(view[block["offset"] : block["offset"] + block["length"]])
            )
            if actual != expected:
                findings.append(
                    StoreVerifyFinding(
                        partition_id=partition["id"],
                        column=block["column"],
                        offset=partition["offset"] + block["offset"],
                        error=(
                            f"crc32 mismatch (manifest {expected:#010x}, "
                            f"data {actual:#010x})"
                        ),
                    )
                )
        if findings:
            # Decoding checksummed-bad blocks would only duplicate the
            # attribution (or crash on garbage); report the CRCs.
            if metrics is not None:
                metrics.inc("store.partitions.corrupt", 1)
            return findings
        try:
            rows = decode_rows(payload, partition["blocks"])
        except StoreError as error:
            findings.append(
                StoreVerifyFinding(
                    partition_id=partition["id"],
                    column=getattr(error, "column", None),
                    offset=partition["offset"],
                    error=str(error),
                )
            )
        else:
            if len(rows) != partition["rows"]:
                findings.append(
                    StoreVerifyFinding(
                        partition_id=partition["id"],
                        column=None,
                        offset=partition["offset"],
                        error=(
                            f"decoded {len(rows)} rows; manifest expects "
                            f"{partition['rows']}"
                        ),
                    )
                )
        if metrics is not None:
            metrics.inc(
                "store.partitions.corrupt" if findings
                else "store.partitions.verified",
                1,
            )
        return findings


@dataclass(frozen=True)
class StoreVerifyFinding:
    """One corruption found by :meth:`TraceStoreReader.verify`.

    ``partition_id``/``column`` are ``None`` for store-level damage (a
    missing or mis-sized data file, an unreadable manifest).
    """

    partition_id: Optional[int]
    column: Optional[str]
    offset: Optional[int]
    error: str

    def describe(self) -> str:
        where = []
        if self.partition_id is not None:
            where.append(f"partition {self.partition_id}")
        if self.column is not None:
            where.append(f"column {self.column!r}")
        if self.offset is not None:
            where.append(f"offset {self.offset}")
        prefix = ", ".join(where) if where else "store"
        return f"{prefix}: {self.error}"


@dataclass
class StoreVerifyReport:
    """Result of :func:`verify_store`: per-partition findings, never raises."""

    path: str
    partitions_total: int = 0
    findings: List[StoreVerifyFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def partitions_corrupt(self) -> int:
        return len(
            {
                finding.partition_id
                for finding in self.findings
                if finding.partition_id is not None
            }
        )


def verify_store(path: PathLike, metrics=None) -> StoreVerifyReport:
    """Scan a store for corruption; reports (never raises) integrity
    errors, including an unreadable manifest."""
    try:
        reader = TraceStoreReader(path)
    except StoreError as error:
        return StoreVerifyReport(
            path=str(path),
            findings=[
                StoreVerifyFinding(
                    partition_id=None, column=None, offset=None,
                    error=str(error),
                )
            ],
        )
    return StoreVerifyReport(
        path=str(path),
        partitions_total=len(reader.partitions),
        findings=reader.verify(metrics=metrics),
    )


def read_store_chunk(
    chunk: StoreChunk, metrics=None
) -> Iterator[Tuple[int, SessionSample]]:
    """Yield ``(seq, sample)`` pairs for one store chunk; the counters sum
    across a shard plan's chunks to exactly a serial scan's."""
    reader = TraceStoreReader(chunk.path)
    return reader.scan_pairs(metrics=metrics, partition_ids=chunk.partition_ids)
