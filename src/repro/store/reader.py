"""Manifest-driven reader: partition pruning and shard-aligned scans.

:class:`TraceStoreReader` decides which partitions to decode from the JSON
manifest alone — a :class:`ScanFilter` on PoPs, countries, or a session
end-time range prunes whole partitions before a single data byte is read
(predicate pushdown). What does get decoded is merged back into exact
stream order by the samples' sequence column, so a full scan of a store
yields the *identical* sample sequence the original JSONL trace held.

For parallel ingestion, :meth:`TraceStoreReader.plan_chunks` groups
partitions into :class:`StoreChunk` units that plug into the sharded
pipeline's planner (:mod:`repro.pipeline.parallel`): every worker decodes
a disjoint set of partitions with one contiguous read each, and the
pipeline's order-key merge restores global order. Within a chunk, rows
still come out in sequence order (a sorted-run merge over the chunk's
partitions); across chunks the sequence ranges may interleave, which the
pipeline's sort-by-order-key merge absorbs — all derived statistics are
order statistics or integer sums, so results stay byte-identical to the
serial pass (asserted by ``tests/test_store_pipeline.py``).

Observability (all data-fact counters, subject to the serial-vs-parallel
counter-equality invariant):

- ``store.partitions.scanned`` / ``store.partitions.pruned``
- ``store.bytes.read`` / ``store.bytes.skipped``
- ``store.rows.decoded``
- plus the shared ``io.rows_read`` ledger per yielded sample.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.records import SessionSample
from repro.store.schema import SCHEMA_VERSION, decode_rows
from repro.store.writer import (
    DATA_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
)

__all__ = ["ScanFilter", "StoreChunk", "TraceStoreReader", "read_store_chunk"]

PathLike = Union[str, pathlib.Path]


def _as_frozenset(values) -> Optional[frozenset]:
    if values is None:
        return None
    if isinstance(values, str):
        return frozenset((values,))
    return frozenset(values)


@dataclass(frozen=True)
class ScanFilter:
    """Predicate pushed down to the partition manifest.

    ``None`` fields match everything. Time bounds are inclusive and apply
    to the session *end* time (the same timestamp that keys windows and
    partition bands).
    """

    pops: Optional[frozenset] = None
    countries: Optional[frozenset] = None
    min_end_time: Optional[float] = None
    max_end_time: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pops", _as_frozenset(self.pops))
        object.__setattr__(self, "countries", _as_frozenset(self.countries))

    def admits_partition(self, partition: dict) -> bool:
        """Can this partition contain a matching row? (Manifest-only.)"""
        if self.pops is not None and partition["pop"] not in self.pops:
            return False
        stats = partition["stats"]
        if self.countries is not None and not self.countries.intersection(
            stats["countries"]
        ):
            return False
        if (
            self.min_end_time is not None
            and stats["max_end_time"] < self.min_end_time
        ):
            return False
        if (
            self.max_end_time is not None
            and stats["min_end_time"] > self.max_end_time
        ):
            return False
        return True

    def admits_sample(self, sample: SessionSample) -> bool:
        """Row-level predicate (partition stats are necessarily coarse)."""
        if self.pops is not None and sample.pop not in self.pops:
            return False
        if (
            self.countries is not None
            and sample.client_country not in self.countries
        ):
            return False
        if self.min_end_time is not None and sample.end_time < self.min_end_time:
            return False
        if self.max_end_time is not None and sample.end_time > self.max_end_time:
            return False
        return True


@dataclass(frozen=True)
class StoreChunk:
    """A worker's unit of store input: a disjoint set of partitions.

    ``ordinal`` is the smallest sequence number in the chunk, which orders
    chunks against each other the same way byte offsets order JSONL
    chunks; :func:`read_store_chunk` yields ``(seq, sample)`` pairs whose
    keys extend that ordering, satisfying the
    :class:`repro.pipeline.io.TraceChunk` order-key contract.
    """

    path: str
    ordinal: int
    partition_ids: Tuple[int, ...]


class TraceStoreReader:
    """Read a partitioned columnar trace store written by
    :class:`repro.store.writer.TraceStoreWriter`."""

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ValueError(
                f"{self.path}: not a trace store (missing {MANIFEST_NAME}; "
                "an interrupted write leaves no manifest on purpose)"
            ) from None
        if manifest.get("format") != STORE_FORMAT:
            raise ValueError(
                f"{manifest_path}: unrecognized format "
                f"{manifest.get('format')!r}"
            )
        if manifest.get("version") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported store version "
                f"{manifest.get('version')!r} (reader supports "
                f"{STORE_FORMAT_VERSION})"
            )
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported schema version "
                f"{manifest.get('schema_version')!r} (reader supports "
                f"{SCHEMA_VERSION})"
            )
        self.manifest = manifest
        self.data_path = self.path / manifest.get("data_file", DATA_NAME)

    # ------------------------------------------------------------------ #
    @property
    def row_count(self) -> int:
        return self.manifest["row_count"]

    @property
    def partitions(self) -> List[dict]:
        return self.manifest["partitions"]

    def partition(self, part_id: int) -> dict:
        for partition in self.partitions:
            if partition["id"] == part_id:
                return partition
        raise KeyError(f"no partition {part_id} in {self.path}")

    # ------------------------------------------------------------------ #
    def decode_partition(
        self, partition: dict, metrics=None
    ) -> List[Tuple[int, SessionSample]]:
        """Read and decode one partition (one contiguous file read)."""
        with open(self.data_path, "rb") as handle:
            handle.seek(partition["offset"])
            payload = handle.read(partition["length"])
        if len(payload) != partition["length"]:
            raise ValueError(
                f"{self.data_path}: truncated partition {partition['id']}"
            )
        rows = decode_rows(payload, partition["blocks"])
        if metrics is not None:
            metrics.inc("store.partitions.scanned")
            metrics.inc("store.bytes.read", partition["length"])
            metrics.inc("store.rows.decoded", len(rows))
        return rows

    def _merged_pairs(
        self, partitions: Sequence[dict], metrics=None
    ) -> List[Tuple[int, SessionSample]]:
        """Merge partitions back into global sequence order.

        Each partition is internally seq-sorted, so this is a merge of
        sorted runs — which is exactly the case timsort detects, making a
        concatenate-and-sort both simpler and faster than a Python-level
        k-way heap merge.
        """
        rows: List[Tuple[int, SessionSample]] = []
        for partition in partitions:
            rows.extend(self.decode_partition(partition, metrics))
        if len(partitions) > 1:
            rows.sort(key=itemgetter(0))
        return rows

    def scan_pairs(
        self,
        scan_filter: Optional[ScanFilter] = None,
        metrics=None,
        partition_ids: Optional[Iterable[int]] = None,
    ) -> Iterator[Tuple[int, SessionSample]]:
        """Yield ``(seq, sample)`` in sequence order, pruning via the
        manifest; ``partition_ids`` restricts the scan to those partitions
        (the shard-aligned path) before the filter applies."""
        candidates = self.partitions
        if partition_ids is not None:
            wanted = set(partition_ids)
            candidates = [p for p in candidates if p["id"] in wanted]
        if scan_filter is None:
            selected = list(candidates)
        else:
            selected = []
            for partition in candidates:
                if scan_filter.admits_partition(partition):
                    selected.append(partition)
                elif metrics is not None:
                    metrics.inc("store.partitions.pruned")
                    metrics.inc("store.bytes.skipped", partition["length"])
        rows = self._merged_pairs(selected, metrics)
        if scan_filter is not None:
            admits = scan_filter.admits_sample
            rows = [pair for pair in rows if admits(pair[1])]
        if metrics is None:
            # Fast path: no per-row accounting, hand the rows straight out.
            yield from rows
            return
        inc = metrics.inc
        for pair in rows:
            inc("io.rows_read")
            yield pair

    def scan(
        self, scan_filter: Optional[ScanFilter] = None, metrics=None
    ) -> Iterator[SessionSample]:
        """Iterate matching samples in exact original stream order.

        Returns a lazy iterator (``scan_pairs`` is a generator, so nothing
        is read until the first item is pulled); the C-level ``map`` avoids
        a per-row generator frame of its own.
        """
        return map(itemgetter(1), self.scan_pairs(scan_filter, metrics))

    # ------------------------------------------------------------------ #
    def plan_chunks(self, num_chunks: int) -> List[StoreChunk]:
        """Group partitions into up to ``num_chunks`` disjoint chunks.

        Partitions are kept in manifest order (first-appearance order, so
        consecutive partitions cover nearby sequence ranges) and split into
        contiguous runs balanced by row count. Concatenating the chunks'
        partitions reproduces the whole store.
        """
        if num_chunks <= 0:
            raise ValueError("num_chunks must be positive")
        partitions = self.partitions
        if not partitions:
            return []
        total_rows = sum(p["rows"] for p in partitions)
        chunks: List[StoreChunk] = []
        run: List[dict] = []
        run_rows = 0
        remaining_chunks = num_chunks
        remaining_rows = total_rows
        for partition in partitions:
            run.append(partition)
            run_rows += partition["rows"]
            target = remaining_rows / remaining_chunks
            if run_rows >= target and remaining_chunks > 1:
                chunks.append(self._chunk_of(run))
                remaining_rows -= run_rows
                remaining_chunks -= 1
                run, run_rows = [], 0
        if run:
            chunks.append(self._chunk_of(run))
        return chunks

    def _chunk_of(self, partitions: Sequence[dict]) -> StoreChunk:
        return StoreChunk(
            path=str(self.path),
            ordinal=min(p["stats"]["min_seq"] for p in partitions),
            partition_ids=tuple(p["id"] for p in partitions),
        )


def read_store_chunk(
    chunk: StoreChunk, metrics=None
) -> Iterator[Tuple[int, SessionSample]]:
    """Yield ``(seq, sample)`` pairs for one store chunk; the counters sum
    across a shard plan's chunks to exactly a serial scan's."""
    reader = TraceStoreReader(chunk.path)
    return reader.scan_pairs(metrics=metrics, partition_ids=chunk.partition_ids)
