"""Columnar trace store: partitioned, pruned, shard-aligned (§2.2.2 scale).

The paper's pipeline ships per-transaction state off the load balancer to
an aggregation tier that digests millions of sessions per 15-minute
window; this package is the repo's equivalent of that tier's compact
on-disk state. Instead of re-parsing a JSONL text trace line by line on
every ``analyze``/``routing`` run, traces can be converted once into a
versioned binary **columnar** layout:

- :mod:`repro.store.encoding` — struct-packed, varint/delta, dictionary,
  and bitmap column codecs with optional per-block deflate;
- :mod:`repro.store.schema` — the versioned column set for
  :class:`~repro.core.records.SessionSample` rows;
- :mod:`repro.store.writer` — :class:`TraceStoreWriter`: partitions keyed
  by (PoP, time-window band) plus a JSON manifest of offsets and min/max
  statistics, written atomically;
- :mod:`repro.store.reader` — :class:`TraceStoreReader`:
  ``scan(filter)`` with manifest-level partition pruning, and
  partition-aligned :class:`StoreChunk` planning for the sharded pipeline;
- :mod:`repro.store.compact` — :func:`compact_store`: merge the many
  small partitions a long-running stream seals into one partition per
  (PoP, band), CRC re-verified and swapped in crash-safely, with scans
  (and thus analyses) byte-identical before and after.

Format and analysis-equivalence guarantees are specified in DESIGN.md §8,
the failure model (per-block CRC32, typed errors, ``verify_store``) in
DESIGN.md §9; ``repro convert`` (CLI) and :func:`repro.pipeline.io.convert`
move traces between the two formats losslessly.
"""

from repro.store.compact import CompactionReport, compact_store
from repro.store.errors import (
    ColumnDecodeError,
    CorruptBlockError,
    CorruptManifestError,
    StoreError,
    TruncatedPartitionError,
)
from repro.store.reader import (
    ScanFilter,
    StoreChunk,
    StoreVerifyFinding,
    StoreVerifyReport,
    TraceStoreReader,
    read_store_chunk,
    verify_store,
)
from repro.store.schema import SCHEMA_VERSION
from repro.store.writer import (
    DEFAULT_BAND_WINDOWS,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    SUPPORTED_STORE_VERSIONS,
    TraceStoreWriter,
    append_to_store,
    is_store_path,
    write_store,
)

__all__ = [
    "DEFAULT_BAND_WINDOWS",
    "SCHEMA_VERSION",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "SUPPORTED_STORE_VERSIONS",
    "ColumnDecodeError",
    "CompactionReport",
    "CorruptBlockError",
    "CorruptManifestError",
    "ScanFilter",
    "StoreChunk",
    "StoreError",
    "StoreVerifyFinding",
    "StoreVerifyReport",
    "TraceStoreReader",
    "TraceStoreWriter",
    "TruncatedPartitionError",
    "append_to_store",
    "compact_store",
    "is_store_path",
    "read_store_chunk",
    "verify_store",
    "write_store",
]
