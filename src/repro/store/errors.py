"""Typed integrity errors for the columnar trace store.

A corrupt store used to surface as a bare ``struct.error`` or ``KeyError``
from deep inside the column decoders — useless for attribution and
impossible for the pipeline's quarantine layer to classify. Every
integrity failure now raises a :class:`StoreError` subclass that names
*where* the damage is (partition, column, absolute file offset), so

- a reader's error message points at the bytes to inspect,
- ``repro verify-store`` can report findings per partition, and
- the sharded pipeline can quarantine the affected shard and keep going.

``StoreError`` subclasses :class:`ValueError` so pre-existing callers
(and tests) that caught ``ValueError`` for store problems keep working.

Every subclass defines ``__reduce__``: these errors cross process
boundaries (a shard worker raising inside a ``ProcessPoolExecutor``
pickles its exception back to the parent), and the default exception
pickling re-invokes ``cls(*self.args)`` — which does not match the
multi-argument constructors here and would take the whole pool down with
a ``BrokenProcessPool`` instead of a typed, attributable error.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ColumnDecodeError",
    "CorruptBlockError",
    "CorruptManifestError",
    "StoreError",
    "TruncatedPartitionError",
]


class StoreError(ValueError):
    """Base class for trace-store integrity errors."""


class CorruptManifestError(StoreError):
    """The store manifest is unreadable or structurally invalid."""

    def __init__(self, path, detail: str) -> None:
        self.path = str(path)
        self.detail = detail
        super().__init__(f"{path}: corrupt store manifest ({detail})")

    def __reduce__(self):
        return (type(self), (self.path, self.detail))


class TruncatedPartitionError(StoreError):
    """A partition's payload ends before the manifest says it should."""

    def __init__(self, path, partition_id: int, expected: int, actual: int) -> None:
        self.path = str(path)
        self.partition_id = partition_id
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{path}: partition {partition_id} truncated "
            f"(expected {expected} bytes, got {actual})"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.path, self.partition_id, self.expected, self.actual),
        )


class ColumnDecodeError(StoreError):
    """One column block failed to decode (schema-level, pre-attribution).

    Raised by :func:`repro.store.schema.decode_rows` with the *column*
    named; the reader re-raises it as a :class:`CorruptBlockError` carrying
    the partition and file-offset attribution only it knows.
    """

    def __init__(self, column: Optional[str], detail: str) -> None:
        self.column = column
        self.detail = detail
        what = f"column {column!r}" if column is not None else "partition payload"
        super().__init__(f"{what} failed to decode: {detail}")

    def __reduce__(self):
        return (type(self), (self.column, self.detail))


class CorruptBlockError(StoreError):
    """A column block failed its CRC32 check or its decode.

    ``offset``/``length`` locate the block in the data file (absolute
    byte offset), so the message pins the exact corrupt range.
    """

    def __init__(
        self,
        path,
        partition_id: int,
        column: Optional[str],
        offset: Optional[int],
        length: Optional[int],
        detail: str,
    ) -> None:
        self.path = str(path)
        self.partition_id = partition_id
        self.column = column
        self.offset = offset
        self.length = length
        self.detail = detail
        where = f"partition {partition_id}"
        if column is not None:
            where += f", column {column!r}"
        if offset is not None:
            where += f", bytes [{offset}, {offset + (length or 0)})"
        super().__init__(f"{path}: corrupt block ({where}): {detail}")

    def __reduce__(self):
        return (
            type(self),
            (
                self.path,
                self.partition_id,
                self.column,
                self.offset,
                self.length,
                self.detail,
            ),
        )
