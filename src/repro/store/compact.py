"""Store compaction: many small streamed partitions → few large ones.

Streaming ingest (:mod:`repro.pipeline.ingest`) seals each watermarked
window as its own store partitions, so a long-running stream accumulates
hundreds of tiny partitions per (PoP, band) key — manifest bloat, poor
pruning granularity, and per-partition decode overhead on every scan.
:func:`compact_store` rewrites the store so each (PoP, band) key holds
exactly one partition again, as if the whole stream had been written in
one :class:`~repro.store.writer.TraceStoreWriter` pass.

What is preserved, exactly:

- **sequence numbers** — rows keep their original ``seq`` keys, so a
  full scan yields the identical ``(seq, sample)`` stream and every
  derived analysis is byte-identical before and after compaction
  (``tests/test_store_compact.py`` asserts this through the pipeline);
- **integrity** — the rewrite round-trips through the CRC-verified
  reader (every source block is checksum-checked as it is decoded), and
  the freshly written blocks are CRC re-verified *from disk* before the
  manifest swap publishes them;
- **crash safety** — the new payload goes to a new *generation* data
  file (``data-g1.bin``, ``data-g2.bin``, …) and the manifest is
  swapped last, atomically. A crash at any point leaves the previous
  manifest pointing at the previous generation, fully intact. Stale
  generation files are unlinked only after the swap; a crash between
  swap and cleanup leaves an orphan file the next compaction removes.
- **appendability** — the manifest keeps the same format (``data_file``
  names the live generation), so :func:`~repro.store.writer.
  append_to_store` keeps working on a compacted store unchanged.

``band_windows`` may re-band the store while compacting (e.g. widen
1-window streaming bands to 4-window batch bands); by default the
store's existing banding is kept.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.aggregation import window_index
from repro.core.records import SessionSample
from repro.fsutil import atomic_write_bytes
from repro.obs import span
from repro.store.encoding import block_checksum
from repro.store.errors import CorruptBlockError
from repro.store.reader import TraceStoreReader
from repro.store.writer import (
    DATA_NAME,
    MANIFEST_NAME,
    STORE_FORMAT_VERSION,
    _encode_buckets,
)

__all__ = ["CompactionReport", "compact_store"]

PathLike = Union[str, pathlib.Path]

_GENERATION_RE = re.compile(r"^data-g(\d+)\.bin$")


@dataclass(frozen=True)
class CompactionReport:
    """What one :func:`compact_store` call did (or why it did nothing)."""

    path: str
    partitions_before: int
    partitions_after: int
    bytes_before: int
    bytes_after: int
    rows: int
    data_file: str
    #: True when the store was already compact and nothing was rewritten.
    skipped: bool = False


def _next_generation_name(current: str) -> str:
    match = _GENERATION_RE.match(current)
    generation = int(match.group(1)) + 1 if match else 1
    return f"data-g{generation}.bin"


def _reverify_from_disk(data_path: pathlib.Path, partitions: List[dict]) -> None:
    """CRC-check every freshly written block against the new manifest.

    Reads back what the filesystem actually holds — not the in-memory
    payload — so torn or bit-flipped writes are caught *before* the
    manifest swap makes them the store.
    """
    payload = data_path.read_bytes()
    for partition in partitions:
        base = partition["offset"]
        for block in partition["blocks"]:
            start = base + block["offset"]
            actual = block_checksum(payload[start : start + block["length"]])
            if actual != block["crc32"]:
                raise CorruptBlockError(
                    data_path,
                    partition["id"],
                    block["column"],
                    start,
                    block["length"],
                    "compaction re-verify failed "
                    f"(manifest {block['crc32']:#010x}, data {actual:#010x})",
                )


def compact_store(
    path: PathLike,
    band_windows: Optional[int] = None,
    compress: bool = True,
    metrics=None,
) -> CompactionReport:
    """Rewrite ``path`` so each (PoP, band) key holds one partition.

    Returns a :class:`CompactionReport`; ``report.skipped`` is True when
    the store is already compact under the requested banding (nothing is
    rewritten, the store is untouched). See the module docstring for the
    exactness, integrity, and crash-safety contract.
    """
    store_path = pathlib.Path(path)
    reader = TraceStoreReader(store_path)
    manifest = reader.manifest
    old_band_windows = int(manifest["band_windows"])
    window_seconds = float(manifest["window_seconds"])
    new_band_windows = (
        old_band_windows if band_windows is None else int(band_windows)
    )
    if new_band_windows < 1:
        raise ValueError("band_windows must be >= 1")
    bytes_before = int(manifest["data_bytes"])
    partitions_before = len(reader.partitions)

    with span("store.compact"):
        # One CRC-verified pass in seq order; bucketing by first
        # appearance reproduces TraceStoreWriter's layout, and keeping
        # the original seq keys preserves the scan stream bit-exactly.
        buckets: Dict[Tuple[str, int], List[Tuple[int, SessionSample]]] = {}
        rows = 0
        for seq, sample in reader.scan_pairs(metrics=None):
            rows += 1
            band = (
                window_index(sample.end_time, window_seconds)
                // new_band_windows
            )
            buckets.setdefault((sample.pop, band), []).append((seq, sample))

        if partitions_before <= len(buckets) and (
            new_band_windows == old_band_windows
        ):
            # Every (PoP, band) key already has exactly one partition —
            # rewriting would only churn bytes.
            if metrics is not None:
                metrics.inc("store.compact.skipped")
            return CompactionReport(
                path=str(store_path),
                partitions_before=partitions_before,
                partitions_after=partitions_before,
                bytes_before=bytes_before,
                bytes_after=bytes_before,
                rows=rows,
                data_file=reader.data_path.name,
                skipped=True,
            )

        payload, partitions = _encode_buckets(buckets, compress=compress)

        old_data_name = manifest.get("data_file", DATA_NAME)
        new_data_name = _next_generation_name(old_data_name)
        new_data_path = store_path / new_data_name
        atomic_write_bytes(new_data_path, payload)
        _reverify_from_disk(new_data_path, partitions)

        new_manifest = dict(manifest)
        new_manifest["version"] = STORE_FORMAT_VERSION
        new_manifest["band_windows"] = new_band_windows
        new_manifest["data_file"] = new_data_name
        new_manifest["data_bytes"] = len(payload)
        new_manifest["partitions"] = partitions
        # The swap: until this rename lands, readers see the old
        # generation; after it, only the new one. Never both.
        atomic_write_bytes(
            store_path / MANIFEST_NAME,
            json.dumps(new_manifest, indent=1).encode("utf-8"),
        )

        # Best-effort cleanup of superseded generations (the old data
        # file, plus any orphan a crashed compaction left behind).
        for stale in store_path.glob("data*.bin"):
            if stale.name == new_data_name:
                continue
            try:
                stale.unlink()
            except OSError:
                pass

    if metrics is not None:
        metrics.inc("store.compact.runs")
        metrics.inc("store.compact.partitions_in", partitions_before)
        metrics.inc("store.compact.partitions_out", len(partitions))
        metrics.inc("store.compact.bytes_in", bytes_before)
        metrics.inc("store.compact.bytes_out", len(payload))
        metrics.inc("store.compact.rows", rows)
    return CompactionReport(
        path=str(store_path),
        partitions_before=partitions_before,
        partitions_after=len(partitions),
        bytes_before=bytes_before,
        bytes_after=len(payload),
        rows=rows,
        data_file=new_data_name,
    )
