"""Column encodings for the binary trace store.

Each column of a partition is encoded independently into one *block*:

- ``f64`` — IEEE-754 doubles, struct-packed little-endian. Exact: a float
  written through ``struct`` decodes to the identical bits, which is what
  lets a store-backed analysis reproduce a JSONL run byte-for-byte.
- ``i64`` — signed 64-bit integers, struct-packed little-endian. Decoded
  with a single C-level ``struct.unpack`` call, so wide integer columns
  (response sizes, congestion windows) cost no per-value Python loop.
- ``dvarint`` — zigzag-encoded deltas as LEB128 varints. Used for the
  monotone sequence column, where deltas are tiny and the varint stream is
  a fraction of the packed width.
- ``varint`` — unsigned LEB128 varints. Used for small-valued columns
  (list lengths, route ranks) and the string-dictionary tables.
- ``bitmap`` — booleans packed eight to a byte, row count first.
- ``strdict`` — dictionary-encoded strings: a table of UTF-8 entries in
  first-seen order followed by one ``i64`` index per row (the index block
  is highly repetitive, which per-block compression absorbs).

Blocks are optionally deflated (zlib) when that actually shrinks them; the
choice is recorded per block in the partition manifest (``codec``), never
guessed at read time.

Every block also carries a CRC32 (:func:`block_checksum`, computed over
the on-disk bytes — i.e. *after* compression) in the manifest, so a reader
can detect a flipped or truncated byte range and attribute it to an exact
(partition, column, offset) before any decoder touches it.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from typing import List, Sequence, Tuple

#: Per-byte bitmap expansion table: decode flips eight flags per table hit
#: instead of one shift/mask per row.
_BYTE_FLAGS = tuple(
    tuple(bool(byte & (1 << bit)) for bit in range(8)) for byte in range(256)
)

__all__ = [
    "block_checksum",
    "compress_block",
    "decompress_block",
    "decode_bitmap",
    "decode_delta_varints",
    "decode_f64",
    "decode_i64",
    "decode_string_dict",
    "decode_varints",
    "encode_bitmap",
    "encode_delta_varints",
    "encode_f64",
    "encode_i64",
    "encode_string_dict",
    "encode_varints",
]


# --------------------------------------------------------------------- #
# Fixed-width packing (C-speed bulk decode)
# --------------------------------------------------------------------- #
def encode_f64(values: Sequence[float]) -> bytes:
    return struct.pack(f"<{len(values)}d", *values)


def decode_f64(data: bytes) -> Tuple[float, ...]:
    return struct.unpack(f"<{len(data) // 8}d", data)


def encode_i64(values: Sequence[int]) -> bytes:
    return struct.pack(f"<{len(values)}q", *values)


def decode_i64(data: bytes) -> Tuple[int, ...]:
    return struct.unpack(f"<{len(data) // 8}q", data)


# --------------------------------------------------------------------- #
# Varints (LEB128) and zigzag deltas
# --------------------------------------------------------------------- #
def encode_varints(values: Sequence[int]) -> bytes:
    out = bytearray()
    append = out.append
    for value in values:
        if value < 0:
            raise ValueError("varint columns hold non-negative integers")
        while value >= 0x80:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    return bytes(out)


def decode_varints(data: bytes) -> List[int]:
    # Fast path: no continuation bits means every value is one byte and
    # the stream *is* the value list. Most varint columns (ranks, list
    # lengths, coalesce counts) are all-small in practice.
    if not data:
        return []
    if max(data) < 0x80:
        return list(data)
    values: List[int] = []
    append = values.append
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            append(value)
            value = 0
            shift = 0
    if shift:
        raise ValueError("truncated varint stream")
    return values


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_delta_varints(values: Sequence[int]) -> bytes:
    deltas = []
    previous = 0
    for value in values:
        deltas.append(_zigzag(value - previous))
        previous = value
    return encode_varints(deltas)


def decode_delta_varints(data: bytes) -> List[int]:
    values = decode_varints(data)
    total = 0
    out: List[int] = []
    append = out.append
    for delta in values:
        total += _unzigzag(delta)
        append(total)
    return out


# --------------------------------------------------------------------- #
# Bitmaps
# --------------------------------------------------------------------- #
def encode_bitmap(flags: Sequence[bool]) -> bytes:
    count = len(flags)
    out = bytearray(encode_varints((count,)))
    byte = 0
    for index, flag in enumerate(flags):
        if flag:
            byte |= 1 << (index & 7)
        if index & 7 == 7:
            out.append(byte)
            byte = 0
    if count & 7:
        out.append(byte)
    return bytes(out)


def decode_bitmap(data: bytes) -> List[bool]:
    view = memoryview(data)
    count = 0
    shift = 0
    offset = 0
    for offset, byte in enumerate(view):  # noqa: B007 — offset reused below
        count |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    bits = view[offset + 1 :]
    flags = list(
        itertools.chain.from_iterable(map(_BYTE_FLAGS.__getitem__, bits))
    )
    del flags[count:]
    return flags


# --------------------------------------------------------------------- #
# String dictionaries
# --------------------------------------------------------------------- #
def encode_string_dict(values: Sequence[str]) -> bytes:
    """Dictionary table (first-seen order) + one packed index per value."""
    table: dict = {}
    indexes = []
    for value in values:
        index = table.get(value)
        if index is None:
            index = table[value] = len(table)
        indexes.append(index)
    encoded = bytearray(encode_varints((len(table),)))
    for entry in table:
        raw = entry.encode("utf-8")
        encoded += encode_varints((len(raw),))
        encoded += raw
    encoded += encode_i64(indexes)
    return bytes(encoded)


def decode_string_dict(data: bytes) -> List[str]:
    view = memoryview(data)
    offset = 0

    def read_varint() -> int:
        nonlocal offset
        value = 0
        shift = 0
        while True:
            byte = view[offset]
            offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    table_size = read_varint()
    table: List[str] = []
    for _ in range(table_size):
        length = read_varint()
        table.append(bytes(view[offset : offset + length]).decode("utf-8"))
        offset += length
    indexes = decode_i64(bytes(view[offset:]))
    return [table[index] for index in indexes]


# --------------------------------------------------------------------- #
# Per-block compression and integrity
# --------------------------------------------------------------------- #
def block_checksum(payload: bytes) -> int:
    """CRC32 of a block's on-disk bytes (post-compression)."""
    return zlib.crc32(payload) & 0xFFFFFFFF



def compress_block(payload: bytes, compress: bool = True) -> Tuple[bytes, str]:
    """Deflate a block when it helps; returns ``(data, codec)``."""
    if compress and len(payload) > 64:
        deflated = zlib.compress(payload, 6)
        if len(deflated) < len(payload):
            return deflated, "zlib"
    return payload, "raw"


def decompress_block(payload: bytes, codec: str) -> bytes:
    if codec == "zlib":
        return zlib.decompress(payload)
    if codec == "raw":
        return payload
    raise ValueError(f"unknown block codec {codec!r}")
