"""repro — reproduction of "Internet Performance from Facebook's Edge" (IMC 2019).

A production-quality Python implementation of the paper's measurement
methodology (server-side passive goodput estimation / HDratio, windowed
MinRTT, CI-gated aggregation comparisons, temporal classification) together
with every substrate it needs to run end to end without Facebook's
production network: a packet-level TCP simulator, a synthetic global edge
(PoPs, BGP routes, routing policy, load-balancer instrumentation), and a
calibrated workload generator.

Quick tour
----------
>>> from repro.core import max_testable_goodput
>>> mss = 1500
>>> round(max_testable_goodput(24 * mss, 10 * mss, 0.060) * 8 / 1e6, 1)
2.8

See ``examples/quickstart.py`` for an end-to-end walkthrough and
``DESIGN.md`` for the full system inventory.
"""

__version__ = "1.0.0"

from repro import core, stats

__all__ = ["core", "stats", "__version__"]
