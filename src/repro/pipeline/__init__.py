"""Analysis pipeline: dataset building and per-figure/table drivers.

- :mod:`repro.pipeline.filters` — hosting-provider filtering (§2.2.4);
- :mod:`repro.pipeline.io` — trace serialization: JSONL and the columnar
  store (:mod:`repro.store`), format auto-detected, ``convert`` between;
- :mod:`repro.pipeline.dataset` — single-pass study dataset;
- :mod:`repro.pipeline.ingest` — always-on streaming ingest: watermarked
  incremental windows sealed into the store, analyzed online;
- :mod:`repro.pipeline.experiments` — Figures 1–7 and the naive-goodput
  ablation;
- :mod:`repro.pipeline.routing_analysis` — Figures 8–10, Tables 1–2;
- :mod:`repro.pipeline.parallel` — sharded parallel ingestion,
  bit-identical to the serial pass;
- :mod:`repro.pipeline.report` — text rendering.
"""

from repro.pipeline.dataset import SessionRow, StudyDataset
from repro.pipeline.experiments import (
    CdfSeries,
    ablation_naive_goodput,
    dataset_from_source,
    fig1_session_behaviour,
    fig2_transfer_sizes,
    fig3_transaction_counts,
    fig4_walkthrough,
    fig5_population_mix,
    fig6_global_performance,
    fig7_rtt_vs_hdratio,
)
from repro.pipeline.filters import FilterStats, filter_hosting_providers
from repro.pipeline.ingest import (
    DegradationAlert,
    IngestResult,
    LateSampleLedger,
    OnlineTemporalAnalyzer,
    StreamingIngestor,
)
from repro.pipeline.io import convert, detect_format, read_samples, write_samples
from repro.pipeline.parallel import (
    DegradedLedger,
    ParallelOptions,
    ShardError,
    build_dataset,
)
from repro.pipeline.streaming import RouteDecision, StreamingRouteMonitor
from repro.pipeline.routing_analysis import (
    fig8_degradation,
    fig9_opportunity,
    fig10_relationship_comparison,
    table1_temporal_classes,
    table2_opportunity_relationships,
)

__all__ = [
    "CdfSeries",
    "DegradationAlert",
    "DegradedLedger",
    "FilterStats",
    "IngestResult",
    "LateSampleLedger",
    "OnlineTemporalAnalyzer",
    "ParallelOptions",
    "ShardError",
    "RouteDecision",
    "SessionRow",
    "StreamingIngestor",
    "StreamingRouteMonitor",
    "StudyDataset",
    "build_dataset",
    "convert",
    "dataset_from_source",
    "detect_format",
    "read_samples",
    "write_samples",
    "ablation_naive_goodput",
    "fig1_session_behaviour",
    "fig2_transfer_sizes",
    "fig3_transaction_counts",
    "fig4_walkthrough",
    "fig5_population_mix",
    "fig6_global_performance",
    "fig7_rtt_vs_hdratio",
    "fig8_degradation",
    "fig9_opportunity",
    "fig10_relationship_comparison",
    "filter_hosting_providers",
    "table1_temporal_classes",
    "table2_opportunity_relationships",
]
