"""Dataset filtering (§2.2.4).

The paper filters out client IPs "determined by a third-party commercial
service to be controlled by a hosting provider (~2% of measured traffic)":
such sessions are API relays and VPN egress points whose user population
shifts over time, which poisons temporal analysis (footnote 2). The
synthetic edge tags those networks at generation time; this module applies
the filter and keeps the audit counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.records import SessionSample

__all__ = ["FilterStats", "filter_hosting_providers", "record_sample"]


@dataclass
class FilterStats:
    """What the filter kept and dropped."""

    kept_sessions: int = 0
    dropped_sessions: int = 0
    kept_bytes: int = 0
    dropped_bytes: int = 0

    @property
    def dropped_traffic_fraction(self) -> float:
        total = self.kept_bytes + self.dropped_bytes
        if total == 0:
            return 0.0
        return self.dropped_bytes / total

    def merge(self, other: "FilterStats") -> "FilterStats":
        """Fold another partition's counters in (sharded ingestion)."""
        self.kept_sessions += other.kept_sessions
        self.dropped_sessions += other.dropped_sessions
        self.kept_bytes += other.kept_bytes
        self.dropped_bytes += other.dropped_bytes
        return self


def record_sample(sample: SessionSample, stats: FilterStats) -> bool:
    """Account one sample against ``stats``; True if it passes the filter."""
    if sample.client_ip_is_hosting:
        stats.dropped_sessions += 1
        stats.dropped_bytes += sample.bytes_sent
        return False
    stats.kept_sessions += 1
    stats.kept_bytes += sample.bytes_sent
    return True


def filter_hosting_providers(
    samples: Iterable[SessionSample], stats: FilterStats
) -> Iterator[SessionSample]:
    """Yield only samples from non-hosting client IPs, updating ``stats``."""
    for sample in samples:
        if record_sample(sample, stats):
            yield sample
