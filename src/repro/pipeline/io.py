"""Trace serialization: JSON-lines export/import of session samples.

The paper's collection pipeline ships captured state off the load balancer
to an aggregation tier (§2.2.2); in this reproduction the equivalent
boundary is a JSONL trace file — one sample per line — so that expensive
synthetic traces can be generated once and re-analysed many times, shared,
or diffed across library versions.

The format is versioned and intentionally flat: every field of
:class:`~repro.core.records.SessionSample` and its transaction records,
with enums as their string values.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from typing import IO, Iterable, Iterator, Union

from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
)

__all__ = ["read_samples", "write_samples", "sample_to_dict", "sample_from_dict"]

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def sample_to_dict(sample: SessionSample) -> dict:
    """Flatten one sample into a JSON-serializable dict."""
    route = None
    if sample.route is not None:
        route = {
            "prefix": sample.route.prefix,
            "as_path": list(sample.route.as_path),
            "relationship": sample.route.relationship.value,
            "preference_rank": sample.route.preference_rank,
            "prepended": sample.route.prepended,
        }
    return {
        "v": FORMAT_VERSION,
        "session_id": sample.session_id,
        "start_time": sample.start_time,
        "end_time": sample.end_time,
        "http_version": sample.http_version.value,
        "min_rtt_seconds": sample.min_rtt_seconds,
        "bytes_sent": sample.bytes_sent,
        "busy_time_seconds": sample.busy_time_seconds,
        "pop": sample.pop,
        "client_country": sample.client_country,
        "client_continent": sample.client_continent,
        "client_ip_is_hosting": sample.client_ip_is_hosting,
        "geo_tag": sample.geo_tag,
        "media_response_sizes": list(sample.media_response_sizes),
        "route": route,
        "transactions": [
            {
                "first_byte_time": txn.first_byte_time,
                "ack_time": txn.ack_time,
                "response_bytes": txn.response_bytes,
                "last_packet_bytes": txn.last_packet_bytes,
                "cwnd_bytes_at_first_byte": txn.cwnd_bytes_at_first_byte,
                "bytes_in_flight_at_start": txn.bytes_in_flight_at_start,
                "last_byte_write_time": txn.last_byte_write_time,
            }
            for txn in sample.transactions
        ],
    }


def sample_from_dict(payload: dict) -> SessionSample:
    """Inverse of :func:`sample_to_dict` (validates via the dataclasses)."""
    version = payload.get("v")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    route = None
    if payload.get("route") is not None:
        raw = payload["route"]
        route = RouteInfo(
            prefix=raw["prefix"],
            as_path=tuple(raw["as_path"]),
            relationship=Relationship(raw["relationship"]),
            preference_rank=raw["preference_rank"],
            prepended=raw["prepended"],
        )
    transactions = [
        TransactionRecord(
            first_byte_time=raw["first_byte_time"],
            ack_time=raw["ack_time"],
            response_bytes=raw["response_bytes"],
            last_packet_bytes=raw["last_packet_bytes"],
            cwnd_bytes_at_first_byte=raw["cwnd_bytes_at_first_byte"],
            bytes_in_flight_at_start=raw["bytes_in_flight_at_start"],
            last_byte_write_time=raw.get("last_byte_write_time"),
        )
        for raw in payload["transactions"]
    ]
    return SessionSample(
        session_id=payload["session_id"],
        start_time=payload["start_time"],
        end_time=payload["end_time"],
        http_version=HttpVersion(payload["http_version"]),
        min_rtt_seconds=payload["min_rtt_seconds"],
        bytes_sent=payload["bytes_sent"],
        busy_time_seconds=payload["busy_time_seconds"],
        transactions=transactions,
        route=route,
        pop=payload["pop"],
        client_country=payload["client_country"],
        client_continent=payload["client_continent"],
        client_ip_is_hosting=payload["client_ip_is_hosting"],
        geo_tag=payload.get("geo_tag", ""),
        media_response_sizes=tuple(payload.get("media_response_sizes", ())),
    )


def _open(path: PathLike, mode: str) -> IO:
    path = pathlib.Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_samples(path: PathLike, samples: Iterable[SessionSample]) -> int:
    """Stream samples to a (optionally gzipped) JSONL file; returns count."""
    count = 0
    with _open(path, "w") as handle:
        for sample in samples:
            handle.write(json.dumps(sample_to_dict(sample)))
            handle.write("\n")
            count += 1
    return count


def read_samples(path: PathLike) -> Iterator[SessionSample]:
    """Stream samples back from a trace file."""
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error
            yield sample_from_dict(payload)
