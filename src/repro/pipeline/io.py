"""Trace serialization: JSONL and columnar-store import/export.

The paper's collection pipeline ships captured state off the load balancer
to an aggregation tier (§2.2.2); in this reproduction the equivalent
boundary is a saved trace, in one of two interchangeable formats:

- **JSONL** — one sample per line, versioned and intentionally flat:
  every field of :class:`~repro.core.records.SessionSample` and its
  transaction records, with enums as their string values. The validating,
  human-inspectable interchange format.
- **columnar store** (:mod:`repro.store`) — a partitioned binary layout
  with manifest-level partition pruning; the fast re-analysis format
  (DESIGN.md §8).

Every entry point here (:func:`read_samples`, :func:`write_samples`,
:func:`plan_chunks`, :func:`read_chunk`) auto-detects the format from the
path — a store is a directory with a ``manifest.json`` (conventionally
``*.store``) — so the dataset builders and the sharded pipeline work over
either without caring which. :func:`convert` moves a trace between the
formats losslessly.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import pathlib
import warnings
from typing import IO, Iterable, Iterator, Optional, Union

from dataclasses import dataclass

from repro import faultinject
from repro.core.records import (
    HttpVersion,
    Relationship,
    RouteInfo,
    SessionSample,
    TransactionRecord,
)
from repro.fsutil import fsync_dir, fsync_file
from repro.obs import active_metrics
from repro.store import (
    DEFAULT_BAND_WINDOWS,
    StoreChunk,
    TraceStoreReader,
    is_store_path,
    read_store_chunk,
    write_store,
)

__all__ = [
    "StoreChunk",
    "TraceChunk",
    "convert",
    "detect_format",
    "plan_chunks",
    "read_chunk",
    "read_samples",
    "read_samples_chunked",
    "read_samples_stream",
    "write_samples",
    "sample_to_dict",
    "sample_from_dict",
]

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def detect_format(path: PathLike) -> str:
    """``"store"`` for trace-store directories (or ``*.store`` targets),
    ``"jsonl"`` otherwise."""
    return "store" if is_store_path(path) else "jsonl"


def sample_to_dict(sample: SessionSample) -> dict:
    """Flatten one sample into a JSON-serializable dict."""
    route = None
    if sample.route is not None:
        route = {
            "prefix": sample.route.prefix,
            "as_path": list(sample.route.as_path),
            "relationship": sample.route.relationship.value,
            "preference_rank": sample.route.preference_rank,
            "prepended": sample.route.prepended,
        }
    return {
        "v": FORMAT_VERSION,
        "session_id": sample.session_id,
        "start_time": sample.start_time,
        "end_time": sample.end_time,
        "http_version": sample.http_version.value,
        "min_rtt_seconds": sample.min_rtt_seconds,
        "bytes_sent": sample.bytes_sent,
        "busy_time_seconds": sample.busy_time_seconds,
        "pop": sample.pop,
        "client_country": sample.client_country,
        "client_continent": sample.client_continent,
        "client_ip_is_hosting": sample.client_ip_is_hosting,
        "geo_tag": sample.geo_tag,
        "media_response_sizes": list(sample.media_response_sizes),
        "route": route,
        "transactions": [
            {
                "first_byte_time": txn.first_byte_time,
                "ack_time": txn.ack_time,
                "response_bytes": txn.response_bytes,
                "last_packet_bytes": txn.last_packet_bytes,
                "cwnd_bytes_at_first_byte": txn.cwnd_bytes_at_first_byte,
                "bytes_in_flight_at_start": txn.bytes_in_flight_at_start,
                "coalesced_count": txn.coalesced_count,
                "last_byte_write_time": txn.last_byte_write_time,
            }
            for txn in sample.transactions
        ],
    }


def sample_from_dict(payload: dict) -> SessionSample:
    """Inverse of :func:`sample_to_dict` (validates via the dataclasses)."""
    version = payload.get("v")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    route = None
    if payload.get("route") is not None:
        raw = payload["route"]
        route = RouteInfo(
            prefix=raw["prefix"],
            as_path=tuple(raw["as_path"]),
            relationship=Relationship(raw["relationship"]),
            preference_rank=raw["preference_rank"],
            prepended=raw["prepended"],
        )
    transactions = [
        TransactionRecord(
            first_byte_time=raw["first_byte_time"],
            ack_time=raw["ack_time"],
            response_bytes=raw["response_bytes"],
            last_packet_bytes=raw["last_packet_bytes"],
            cwnd_bytes_at_first_byte=raw["cwnd_bytes_at_first_byte"],
            bytes_in_flight_at_start=raw["bytes_in_flight_at_start"],
            coalesced_count=raw.get("coalesced_count", 1),
            last_byte_write_time=raw.get("last_byte_write_time"),
        )
        for raw in payload["transactions"]
    ]
    return SessionSample(
        session_id=payload["session_id"],
        start_time=payload["start_time"],
        end_time=payload["end_time"],
        http_version=HttpVersion(payload["http_version"]),
        min_rtt_seconds=payload["min_rtt_seconds"],
        bytes_sent=payload["bytes_sent"],
        busy_time_seconds=payload["busy_time_seconds"],
        transactions=transactions,
        route=route,
        pop=payload["pop"],
        client_country=payload["client_country"],
        client_continent=payload["client_continent"],
        client_ip_is_hosting=payload["client_ip_is_hosting"],
        geo_tag=payload.get("geo_tag", ""),
        media_response_sizes=tuple(payload.get("media_response_sizes", ())),
    )


def _open(path: PathLike, mode: str, compressed: Optional[bool] = None) -> IO:
    """Open a trace file for text I/O.

    ``compressed`` forces gzip on/off; the default infers it from the
    suffix. The explicit flag exists so atomic writes can open a temp file
    (whose name ends in ``.tmp.<pid>``) with the *target* path's
    compression.
    """
    path = pathlib.Path(path)
    if compressed is None:
        compressed = path.suffix == ".gz"
    if compressed:
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_samples(
    path: PathLike, samples: Iterable[SessionSample], metrics=None
) -> int:
    """Write samples as a trace; returns the count.

    The format follows the path: a ``*.store`` target becomes a columnar
    store (:mod:`repro.store`), anything else a (optionally gzipped) JSONL
    file. ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`
    that receives ``io.rows_written`` (and the ``store.*`` write counters
    for store targets).

    JSONL writes are atomic *and durable*: samples stream into a temp file
    beside the target, which is fsync'd after the last line, renamed into
    place, and then the parent directory entry is fsync'd
    (:mod:`repro.fsutil`). An interrupted export leaves the previous trace
    intact (or no trace), never a truncated file that parses as a
    short-but-valid trace — and a rename that returned cannot be undone by
    a crash. Store writes get the same guarantee from the writer's
    manifest-last protocol.
    """
    if detect_format(path) == "store":
        return write_store(path, samples, metrics=metrics)
    path = pathlib.Path(path)
    compressed = path.suffix == ".gz"
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    count = 0
    try:
        with _open(tmp, "w", compressed=compressed) as handle:
            for sample in samples:
                handle.write(json.dumps(sample_to_dict(sample)))
                handle.write("\n")
                count += 1
        # gzip/text wrappers flush their own buffers on close but never
        # fsync, so reopen the finished temp file to force it to disk
        # before the rename publishes it.
        fsync_file(tmp)
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if metrics is not None:
        metrics.inc("io.rows_written", count)
    return count


def read_samples(path: PathLike, metrics=None) -> Iterator[SessionSample]:
    """Stream samples back from a trace (JSONL or store, by path).

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry` that
    receives ``io.rows_read`` per decoded row and ``io.decode_errors``
    (counted before the error is raised, so a manifest written after a
    failure still shows how far the read got). Store reads add the
    ``store.*`` scan counters.
    """
    if detect_format(path) == "store":
        # Hand the reader's iterator straight out rather than re-yielding
        # row by row: the extra generator frame is measurable on long
        # scans. The manifest is read eagerly, the data lazily.
        return TraceStoreReader(path).scan(metrics=metrics)
    return _read_samples_jsonl(path, metrics)


def _read_samples_jsonl(
    path: PathLike, metrics=None
) -> Iterator[SessionSample]:
    faultinject.check_io(path)
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                if metrics is not None:
                    metrics.inc("io.decode_errors")
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error
            if metrics is not None:
                metrics.inc("io.rows_read")
            yield sample_from_dict(payload)


def read_samples_stream(handle: IO, metrics=None) -> Iterator[SessionSample]:
    """Stream JSONL samples from an open text handle (e.g. ``sys.stdin``).

    The unbounded-input path for ``repro ingest -``: unlike
    :func:`read_samples` there is no path to seek or re-open, so the
    samples arrive strictly once, in arrival order — exactly the contract
    :class:`repro.pipeline.ingest.StreamingIngestor` expects. Counts the
    same ``io.rows_read`` / ``io.decode_errors`` as a JSONL file read.
    """
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if metrics is not None:
                metrics.inc("io.decode_errors")
            raise ValueError(
                f"<stream>:{line_number}: invalid JSON ({error})"
            ) from error
        if metrics is not None:
            metrics.inc("io.rows_read")
        yield sample_from_dict(payload)


def convert(
    src: PathLike,
    dst: PathLike,
    band_windows: int = DEFAULT_BAND_WINDOWS,
    compress: bool = True,
    metrics=None,
) -> int:
    """Convert a trace between formats; returns the row count.

    Directions follow the paths (see :func:`detect_format`): JSONL →
    ``*.store`` packs the trace into the columnar store; store → JSONL
    unpacks it. Round-tripping either way reproduces the sample stream
    exactly — same samples, same order (tested against the golden trace).
    """
    samples = read_samples(src, metrics=metrics)
    if detect_format(dst) == "store":
        return write_store(
            dst,
            samples,
            band_windows=band_windows,
            compress=compress,
            metrics=metrics,
        )
    return write_samples(dst, samples, metrics=metrics)


# --------------------------------------------------------------------- #
# Chunked reading (parallel ingestion)
# --------------------------------------------------------------------- #
def _is_gzip(path: PathLike) -> bool:
    return pathlib.Path(path).suffix == ".gz"


#: Paths (resolved) whose gzip chunk-fallback warning already fired in this
#: process. The ``io.gzip_chunk_fallback`` counter still increments on every
#: fallback plan — the counter is the record, the warning is the nudge, and
#: repeating the nudge per shard-plan of the same file is pure noise.
_GZIP_FALLBACK_WARNED: set = set()


@dataclass(frozen=True)
class TraceChunk:
    """One independently readable slice of a JSONL trace.

    Plain files are split by **byte range** (``start_byte``/``end_byte``,
    newline-aligned) so a worker can ``seek`` straight to its slice without
    touching the rest of the file. Gzip members are not seekable, so ``.gz``
    traces are split by **line block** (``start_line``/``end_line``,
    half-open) instead; every worker decompresses from the start but only
    parses its own block — JSON decoding, not decompression, dominates.

    ``ordinal`` is a key that orders this chunk's samples against every
    other chunk of the same file: the absolute byte offset of the chunk's
    first line (byte-range mode) or its first line index (line-block mode).
    :func:`read_chunk` yields ``(key, sample)`` pairs whose keys extend the
    same ordering within the chunk, so a merger can restore the exact
    serial stream order by sorting on the key.
    """

    path: str
    ordinal: int
    start_byte: int = 0
    end_byte: int = 0
    start_line: int = 0
    end_line: int = 0
    byte_range: bool = True


def _newline_aligned_boundary(handle: IO, target: int) -> int:
    """First byte position at/after ``target`` that starts a fresh line."""
    if target <= 0:
        return 0
    handle.seek(target - 1)
    handle.readline()  # finish the line straddling the target
    return handle.tell()


def plan_chunks(path: PathLike, num_chunks: int) -> list:
    """Split a trace into up to ``num_chunks`` independently readable chunks.

    Fewer chunks may be returned for small files (a chunk is never empty by
    construction; an empty file yields no chunks). Concatenating the chunks
    in order reproduces the whole file. Store traces split along partition
    boundaries (:meth:`repro.store.TraceStoreReader.plan_chunks`), so each
    worker gets contiguous reads instead of line blocks.

    Gzipped JSONL is not seekable, so its "chunks" are line blocks: every
    worker re-decompresses the file from the start and parses only its own
    block. That caps the parallel speedup well below the worker count (the
    decompression is repeated serially in each worker); when it happens
    with more than one chunk, a :class:`RuntimeWarning` is emitted (once
    per path per process) and the process-wide ``io.gzip_chunk_fallback``
    counter increments on *every* occurrence. The counter goes to
    :func:`repro.obs.active_metrics` — it is a fact about this
    *execution*, not about the data, so recording it in a dataset's
    registry would break the serial-vs-parallel counter-equality invariant
    (serial ingestion never plans chunks). Convert the trace with
    ``repro convert`` (plain JSONL or a columnar store) for seekable
    chunking.

    Chunks carry the **resolved** path: a shard task may execute in a
    worker daemon whose working directory is not the caller's (DESIGN.md
    §13), so a relative path must be pinned here, client-side, before it
    ships. (Cross-host dispatch still requires the trace to be reachable
    at the same absolute path on every worker — shared storage.)
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    if detect_format(path) == "store":
        return TraceStoreReader(pathlib.Path(path).resolve()).plan_chunks(
            num_chunks
        )
    path = pathlib.Path(path).resolve()
    if _is_gzip(path):
        if num_chunks > 1:
            registry = active_metrics()
            if registry is not None:
                registry.inc("io.gzip_chunk_fallback")
            resolved = str(path.resolve())
            if resolved not in _GZIP_FALLBACK_WARNED:
                _GZIP_FALLBACK_WARNED.add(resolved)
                warnings.warn(
                    f"{path}: gzip traces are not seekable; falling back "
                    "to line-block chunks (each worker re-decompresses the "
                    "whole file). Convert to plain JSONL or a .store for "
                    "scalable parallel ingestion.",
                    RuntimeWarning,
                    stacklevel=2,
                )
        with _open(path, "r") as handle:
            total_lines = sum(1 for _ in handle)
        if total_lines == 0:
            return []
        bounds = sorted(
            {(total_lines * i) // num_chunks for i in range(num_chunks)}
            | {total_lines}
        )
        return [
            TraceChunk(
                path=str(path),
                ordinal=start,
                start_line=start,
                end_line=end,
                byte_range=False,
            )
            for start, end in zip(bounds, bounds[1:])
            if end > start
        ]
    size = path.stat().st_size
    if size == 0:
        return []
    with open(path, "rb") as handle:
        raw_bounds = {
            _newline_aligned_boundary(handle, (size * i) // num_chunks)
            for i in range(num_chunks)
        }
    bounds = sorted(bound for bound in raw_bounds if bound < size) + [size]
    return [
        TraceChunk(path=str(path), ordinal=start, start_byte=start, end_byte=end)
        for start, end in zip(bounds, bounds[1:])
        if end > start
    ]


def _read_byte_range_chunk(chunk: TraceChunk, metrics=None) -> Iterator[tuple]:
    faultinject.check_io(chunk.path)
    with open(chunk.path, "rb") as handle:
        handle.seek(chunk.start_byte)
        offset = chunk.start_byte
        while offset < chunk.end_byte:
            raw = handle.readline()
            if not raw:
                break
            line_start = offset
            offset += len(raw)
            text = raw.decode("utf-8").strip()
            if not text:
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                if metrics is not None:
                    metrics.inc("io.decode_errors")
                raise ValueError(
                    f"{chunk.path}@byte {line_start}: invalid JSON ({error})"
                ) from error
            if metrics is not None:
                metrics.inc("io.rows_read")
            yield line_start, sample_from_dict(payload)


def _read_line_block_chunk(chunk: TraceChunk, metrics=None) -> Iterator[tuple]:
    faultinject.check_io(chunk.path)
    with _open(chunk.path, "r") as handle:
        for index, line in enumerate(handle):
            if index >= chunk.end_line:
                break
            if index < chunk.start_line:
                continue
            text = line.strip()
            if not text:
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                if metrics is not None:
                    metrics.inc("io.decode_errors")
                raise ValueError(
                    f"{chunk.path}:{index + 1}: invalid JSON ({error})"
                ) from error
            if metrics is not None:
                metrics.inc("io.rows_read")
            yield index, sample_from_dict(payload)


def read_chunk(chunk, metrics=None) -> Iterator[tuple]:
    """Yield ``(order_key, sample)`` pairs for one chunk (either a JSONL
    :class:`TraceChunk` or a store :class:`StoreChunk`; see each class for
    its key's ordering guarantee). ``metrics`` receives the same counters
    as :func:`read_samples`, so the chunked counters sum to exactly the
    serial read's."""
    if isinstance(chunk, StoreChunk):
        return read_store_chunk(chunk, metrics)
    if chunk.byte_range:
        return _read_byte_range_chunk(chunk, metrics)
    return _read_line_block_chunk(chunk, metrics)


def read_samples_chunked(
    path: PathLike, num_chunks: int
) -> Iterator[SessionSample]:
    """Read a trace through the chunk planner.

    Equivalent to :func:`read_samples`; exists so the equivalence can be
    tested directly and as the serial fallback of the parallel pipeline.
    JSONL chunks concatenate in file order; store chunks carry interleaved
    sequence ranges, so their pairs are merged on the order key — the same
    restoration the parallel pipeline's merger performs.
    """
    chunks = plan_chunks(path, num_chunks)
    if chunks and isinstance(chunks[0], StoreChunk):
        pairs = [pair for chunk in chunks for pair in read_chunk(chunk)]
        pairs.sort(key=lambda pair: pair[0])
        for _, sample in pairs:
            yield sample
        return
    for chunk in chunks:
        for _, sample in read_chunk(chunk):
            yield sample
