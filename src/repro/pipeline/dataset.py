"""Study dataset: one pass over the sample stream, everything derived.

:class:`StudyDataset` ingests the (filtered) session stream once and keeps
both views the experiments need:

- **per-session rows** (:class:`SessionRow`) — compact tuples for the
  distribution figures (1, 2, 3, 6, 7) where each session is one point;
- **aggregations** — the (user group, route rank, window) store driving the
  temporal/routing analyses (Figures 5, 8, 9, 10, Tables 1–2).

HDratio is computed exactly once per session, during ingestion, through the
full §3.2 path (coalescing → eligibility → capability → achievement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.aggregation import AggregationStore
from repro.core.hdratio import naive_hdratio, session_goodput
from repro.core.records import HttpVersion, SessionSample
from repro.obs import MetricsRegistry
from repro.pipeline.filters import FilterStats, record_sample

__all__ = ["SessionRow", "StudyDataset"]


@dataclass(frozen=True)
class SessionRow:
    """One session flattened for distribution analysis."""

    min_rtt_ms: float
    hdratio: Optional[float]
    naive_hdratio: Optional[float]
    bytes_sent: int
    duration: float
    busy_fraction: float
    transaction_count: int
    is_http2: bool
    continent: str
    geo_tag: str
    response_sizes: tuple
    media_bytes: tuple


class StudyDataset:
    """Single-pass collector for all experiment drivers.

    ``study_windows`` is the nominal number of 15-minute windows in the
    study period (used by the coverage rule); ``keep_response_sizes``
    controls whether per-transaction sizes are retained (needed only by the
    Figure 2 driver — disable for large runs that skip it).
    """

    def __init__(
        self,
        study_windows: int,
        keep_response_sizes: bool = True,
        compute_naive: bool = False,
        window_seconds: float = 900.0,
    ) -> None:
        if study_windows <= 0:
            raise ValueError("study_windows must be positive")
        self.study_windows = study_windows
        self.keep_response_sizes = keep_response_sizes
        self.compute_naive = compute_naive
        self.window_seconds = window_seconds
        self.rows: List[SessionRow] = []
        #: Per-dataset observability registry. Always freshly constructed —
        #: never inherited from an activation — so every shard worker (even
        #: a thread sharing this process) counts into its own registry and
        #: the parallel merge cannot double-count.
        self.metrics = MetricsRegistry()
        self.store = AggregationStore(
            window_seconds=window_seconds, with_digests=False, metrics=self.metrics
        )
        self.filter_stats = FilterStats()
        #: Per-shard execution report filled by the parallel pipeline
        #: (empty for serial ingestion): dicts of ordinal/rows/wall_seconds.
        self.shard_report: List[dict] = []
        #: Set by the parallel pipeline when shards were quarantined: a
        #: :class:`repro.pipeline.parallel.DegradedLedger` naming every
        #: lost shard and the samples/partitions lost with it. ``None``
        #: for clean (or serial) runs.
        self.degraded = None
        self._verdict_cache: dict = {}

    @property
    def windows_per_day(self) -> int:
        return max(int(round(86400.0 / self.window_seconds)), 1)

    def verdicts(self, metric: str, kind: str):
        """Cached degradation/opportunity verdict series per user group.

        ``kind`` is ``"degradation"`` or ``"opportunity"``. Several
        figure/table drivers need the same verdict series; recomputing the
        confidence intervals per driver dominates analysis time otherwise.
        """
        if kind not in ("degradation", "opportunity"):
            raise ValueError(f"unknown verdict kind {kind!r}")
        key = (metric, kind)
        if key in self._verdict_cache:
            return self._verdict_cache[key]
        from repro.core.comparison import degradation_series, opportunity_series

        result = {}
        for group in self.store.groups():
            if kind == "degradation":
                series = degradation_series(self.store, group, metric)
            else:
                series = opportunity_series(self.store, group, metric)
            if series:
                result[group] = series
        self._verdict_cache[key] = result
        return result

    def ingest_one(self, sample: SessionSample) -> bool:
        """Filter, measure, and aggregate one sample; True if it was kept.

        This is the unit of work the sharded pipeline
        (:mod:`repro.pipeline.parallel`) fans out, so everything a sample
        contributes — row, aggregation, filter accounting — must happen
        here and nowhere else.
        """
        metrics = self.metrics
        metrics.inc("pipeline.samples.read")
        if not record_sample(sample, self.filter_stats):
            metrics.inc("pipeline.samples.dropped_hosting")
            return False
        metrics.inc("pipeline.samples.kept")
        if sample.transactions:
            summary = session_goodput(sample.transactions, sample.min_rtt_seconds)
            hd = summary.hdratio
            # The §3.2 funnel, summed across sessions: raw records in,
            # coalesced away, dropped by bytes-in-flight, Gtestable, achieved.
            metrics.inc("methodology.transactions.raw", summary.raw_count)
            metrics.inc("methodology.transactions.coalesced", summary.merged_away)
            metrics.inc(
                "methodology.transactions.inflight_dropped",
                summary.inflight_dropped,
            )
            metrics.inc("methodology.transactions.gtestable", summary.tested)
            metrics.inc("methodology.transactions.achieved", summary.achieved)
            if summary.tested:
                metrics.inc("methodology.sessions.hd_testable")
        else:
            hd = None
        naive = (
            naive_hdratio(sample.transactions, sample.min_rtt_seconds)
            if self.compute_naive and sample.transactions
            else None
        )
        if self.keep_response_sizes:
            sizes = tuple(t.response_bytes for t in sample.transactions)
            media = tuple(sample.media_response_sizes)
        else:
            sizes = ()
            media = ()
        self.rows.append(
            SessionRow(
                min_rtt_ms=sample.min_rtt_ms,
                hdratio=hd,
                naive_hdratio=naive,
                bytes_sent=sample.bytes_sent,
                duration=sample.duration,
                busy_fraction=sample.busy_fraction,
                transaction_count=sample.transaction_count,
                is_http2=sample.http_version is HttpVersion.HTTP_2,
                continent=sample.client_continent,
                geo_tag=sample.geo_tag,
                response_sizes=sizes,
                media_bytes=media,
            )
        )
        self.store.add(sample, hdratio=hd)
        return True

    def ingest(self, samples: Iterable[SessionSample]) -> "StudyDataset":
        """Filter, measure, and aggregate a sample stream. Returns self."""
        for sample in samples:
            self.ingest_one(sample)
        return self

    @classmethod
    def from_trace(
        cls,
        path,
        *,
        study_windows: int,
        keep_response_sizes: bool = True,
        compute_naive: bool = False,
        window_seconds: float = 900.0,
        scan_filter=None,
    ) -> "StudyDataset":
        """Build a dataset straight from a trace path (JSONL or store).

        The format is auto-detected (:func:`repro.pipeline.io.detect_format`).
        ``scan_filter`` — a :class:`repro.store.ScanFilter` — restricts a
        store-backed build to matching samples, pruning whole partitions
        from the manifest before any bytes are decoded; it requires a store
        path (JSONL has no pushdown to give).
        """
        from repro.pipeline.io import detect_format, read_samples
        from repro.store import TraceStoreReader

        dataset = cls(
            study_windows=study_windows,
            keep_response_sizes=keep_response_sizes,
            compute_naive=compute_naive,
            window_seconds=window_seconds,
        )
        if scan_filter is not None:
            if detect_format(path) != "store":
                raise ValueError(
                    "scan_filter requires a columnar store trace; convert "
                    "the JSONL trace first (repro convert)"
                )
            reader = TraceStoreReader(path)
            return dataset.ingest(
                reader.scan(scan_filter, metrics=dataset.metrics)
            )
        return dataset.ingest(read_samples(path, metrics=dataset.metrics))

    # ------------------------------------------------------------------ #
    @property
    def session_count(self) -> int:
        return len(self.rows)

    def rows_for_continent(self, code: str) -> List[SessionRow]:
        return [row for row in self.rows if row.continent == code]

    def hd_rows(self) -> List[SessionRow]:
        """Rows whose session could test for HD goodput."""
        return [row for row in self.rows if row.hdratio is not None]
