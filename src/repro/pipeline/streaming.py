"""Real-time route monitoring over the sample stream.

A bounded-memory, single-pass monitor of the kind the paper's footnote 11
sketches for production traffic engineering: per (user group, route rank)
state for the *current* window only, kept as t-digests, emitting a
:class:`RouteDecision` per group when a window closes. This is the
near-real-time counterpart of the batch analysis in
:mod:`repro.pipeline.routing_analysis` — same statistics, O(groups) memory,
no sample retention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.aggregation import window_index
from repro.core.constants import (
    AGGREGATION_WINDOW_SECONDS,
    DEFAULT_HDRATIO_THRESHOLD,
    DEFAULT_MINRTT_THRESHOLD_MS,
    MAX_CI_WIDTH_HDRATIO,
    MAX_CI_WIDTH_MINRTT_MS,
)
from repro.core.hdratio import compute_hdratio
from repro.core.records import SessionSample, UserGroupKey
from repro.stats.streaming import StreamingAggregate, streaming_compare

__all__ = ["RouteDecision", "StreamingRouteMonitor"]


@dataclass(frozen=True)
class RouteDecision:
    """What the monitor concluded for one group at window close.

    ``action`` is ``"hold"`` (preferred route fine, or not enough signal)
    or ``"consider_alternate"`` (a CI-confirmed, HD-guarded win exists on
    ``alternate_rank``). Decisions are advisory: acting on them safely is
    the job of :class:`repro.edge.detour.GradualController`.
    """

    group: UserGroupKey
    window: int
    action: str
    alternate_rank: Optional[int] = None
    minrtt_improvement_ms: float = 0.0
    hdratio_improvement: float = 0.0
    preferred_sessions: int = 0

    @property
    def is_shift_candidate(self) -> bool:
        return self.action == "consider_alternate"


class StreamingRouteMonitor:
    """Single-pass monitor: feed samples, collect per-window decisions.

    Samples must arrive roughly in event-time order: the monitor keeps
    state for the *current* window only, so a sample whose window already
    closed cannot be aggregated any more. Such **late** samples are
    excluded from window state (folding them into the current window would
    corrupt its t-digests), counted on :attr:`late_samples`, and — when a
    ``metrics`` registry is supplied — under the ``stream.late_samples``
    counter. Pipelines that must *keep* late samples buffer them upstream
    with a watermark instead (:class:`repro.pipeline.ingest.StreamingIngestor`,
    which feeds this monitor only sealed, in-order windows).

    :attr:`closed_windows` records every window the monitor closed, in
    order, **including empty ones** skipped when a sample jumps more than
    one window forward — so the record is gapless and monotone, and the
    windows appearing in :attr:`decisions` are a subset of it in the same
    order.
    """

    def __init__(
        self,
        window_seconds: float = AGGREGATION_WINDOW_SECONDS,
        minrtt_threshold_ms: float = DEFAULT_MINRTT_THRESHOLD_MS,
        hdratio_threshold: float = DEFAULT_HDRATIO_THRESHOLD,
        compression: float = 100.0,
        metrics=None,
    ) -> None:
        self.window_seconds = window_seconds
        self.minrtt_threshold_ms = minrtt_threshold_ms
        self.hdratio_threshold = hdratio_threshold
        self.compression = compression
        #: Optional :class:`repro.obs.MetricsRegistry` receiving the
        #: ``stream.late_samples`` execution counter.
        self.metrics = metrics
        self._current_window: Optional[int] = None
        self._state: Dict[Tuple[UserGroupKey, int], StreamingAggregate] = {}
        self._finished = False
        self.decisions: List[RouteDecision] = []
        #: Late samples seen (window earlier than the current one); they
        #: are counted, never aggregated.
        self.late_samples = 0
        #: Every window closed so far, gapless and monotone (empty skipped
        #: windows included).
        self.closed_windows: List[int] = []

    # ------------------------------------------------------------------ #
    def observe(self, sample: SessionSample) -> bool:
        """Feed one sample; returns False when it was late (and dropped).

        Samples must arrive roughly in time order; a sample whose window
        precedes the current one arrived after its window closed and is
        excluded from aggregation (see the class docstring).
        """
        if self._finished:
            raise ValueError("monitor is finished; create a new one")
        if sample.route is None:
            raise ValueError("sample is missing its route annotation")
        window = window_index(sample.end_time, self.window_seconds)
        if self._current_window is None:
            self._current_window = window
        elif window > self._current_window:
            self._close_window()
            # A jump of more than one window closes the skipped, empty
            # windows too, keeping closed_windows gapless and monotone.
            for skipped in range(self._current_window + 1, window):
                self.closed_windows.append(skipped)
            self._current_window = window
        elif window < self._current_window:
            self.late_samples += 1
            if self.metrics is not None:
                self.metrics.inc("stream.late_samples")
            return False
        group = UserGroupKey(
            pop=sample.pop,
            prefix=sample.route.prefix,
            country=sample.client_country,
        )
        key = (group, sample.route.preference_rank)
        aggregate = self._state.get(key)
        if aggregate is None:
            aggregate = StreamingAggregate.empty(self.compression)
            self._state[key] = aggregate
        aggregate.add(
            sample.min_rtt_ms, compute_hdratio(sample), sample.bytes_sent
        )

    def observe_all(self, samples: Iterable[SessionSample]) -> None:
        for sample in samples:
            self.observe(sample)

    def finish(self) -> List[RouteDecision]:
        """Close the trailing window and return every decision made.

        Idempotent: calling it again returns the same decision list
        without re-closing state or duplicating decisions.
        """
        if self._finished:
            return self.decisions
        if self._current_window is not None:
            self._close_window()
        self._current_window = None
        self._finished = True
        return self.decisions

    # ------------------------------------------------------------------ #
    def _close_window(self) -> None:
        if self._current_window is None:
            # State without a window has no honest label; the old fallback
            # (window 0) silently mislabeled every decision it produced.
            if self._state:
                raise RuntimeError(
                    "cannot close window state without a current window"
                )
            return
        window = self._current_window
        self.closed_windows.append(window)
        groups = {group for group, _ in self._state}
        for group in groups:
            decision = self._decide(group, window)
            if decision is not None:
                self.decisions.append(decision)
        self._state.clear()

    def _decide(self, group: UserGroupKey, window: int) -> Optional[RouteDecision]:
        preferred = self._state.get((group, 0))
        if preferred is None:
            return None
        alternates = [
            (rank, aggregate)
            for (key_group, rank), aggregate in self._state.items()
            if key_group == group and rank > 0
        ]
        best: Optional[Tuple[int, float, float]] = None  # rank, rtt gain, hd gain
        for rank, aggregate in alternates:
            rtt_cmp = streaming_compare(
                preferred.rtt_digest,
                aggregate.rtt_digest,
                max_ci_width=MAX_CI_WIDTH_MINRTT_MS,
            )
            hd_cmp = streaming_compare(
                aggregate.hd_digest,
                preferred.hd_digest,
                max_ci_width=MAX_CI_WIDTH_HDRATIO,
            )
            hd_gain = hd_cmp.difference if hd_cmp.valid else 0.0
            # HDratio win stands alone; a MinRTT win needs the HD guard.
            if hd_cmp.valid and hd_cmp.exceeds(self.hdratio_threshold):
                candidate = (rank, max(rtt_cmp.difference, 0.0), hd_gain)
            elif (
                rtt_cmp.valid
                and rtt_cmp.exceeds(self.minrtt_threshold_ms)
                and (not hd_cmp.valid or hd_cmp.statistically_equal_or_greater())
            ):
                candidate = (rank, rtt_cmp.difference, max(hd_gain, 0.0))
            else:
                continue
            if best is None or candidate[1] + candidate[2] * 100 > (
                best[1] + best[2] * 100
            ):
                best = candidate

        if best is None:
            return RouteDecision(
                group=group,
                window=window,
                action="hold",
                preferred_sessions=preferred.session_count,
            )
        rank, rtt_gain, hd_gain = best
        return RouteDecision(
            group=group,
            window=window,
            action="consider_alternate",
            alternate_rank=rank,
            minrtt_improvement_ms=rtt_gain if not math.isnan(rtt_gain) else 0.0,
            hdratio_improvement=hd_gain,
            preferred_sessions=preferred.session_count,
        )
