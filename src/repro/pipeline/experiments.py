"""Experiment drivers for the characterization figures (1–7) and ablations.

Each driver consumes a :class:`~repro.pipeline.dataset.StudyDataset` (or
runs the packet simulator directly, for Figure 4) and returns a result
object holding the same series/rows the paper's figure shows plus the
headline statistics quoted in the text. The routing analyses (Figures 8–10,
Tables 1–2) live in :mod:`repro.pipeline.routing_analysis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import span, traced
from repro.pipeline.dataset import StudyDataset
from repro.stats.weighted import ecdf, percentile

__all__ = [
    "CdfSeries",
    "dataset_from_source",
    "fig1_session_behaviour",
    "fig2_transfer_sizes",
    "fig3_transaction_counts",
    "fig4_walkthrough",
    "fig5_population_mix",
    "fig6_global_performance",
    "fig7_rtt_vs_hdratio",
    "ablation_naive_goodput",
]


# --------------------------------------------------------------------- #
# Dataset construction (serial or sharded-parallel)
# --------------------------------------------------------------------- #
def dataset_from_source(
    source,
    *,
    study_windows: int,
    keep_response_sizes: bool = True,
    compute_naive: bool = False,
    window_seconds: float = 900.0,
    workers: int = 1,
    shards: Optional[int] = None,
    executor: str = "process",
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    strict: bool = False,
    engine: str = "row",
    worker_addrs: Sequence[str] = (),
) -> StudyDataset:
    """Build the :class:`StudyDataset` every figure driver consumes.

    ``source`` is a trace path (JSONL or columnar store, auto-detected) or
    an in-memory sample stream. With ``workers > 1`` (or ``shards > 1``)
    ingestion runs through the sharded pipeline
    (:mod:`repro.pipeline.parallel`), whose output is bit-identical to the
    serial pass — so fig6/fig8/fig10 results depend on neither the trace
    format nor how the dataset was built. ``max_retries``,
    ``retry_backoff``, and ``strict`` set the sharded pipeline's fault
    policy (retry, then quarantine — or fail fast under ``strict``); see
    :class:`repro.pipeline.parallel.ParallelOptions`.

    ``engine`` selects the row fold (``"row"``, the oracle) or the
    column-batch kernels (``"batch"``, :mod:`repro.kernels`); outputs are
    byte-identical either way (``tests/test_batch_equivalence.py``).

    ``executor="dispatch"`` fans shards out over :mod:`repro.dist` worker
    daemons named by ``worker_addrs`` (``host:port`` strings); the
    dispatch path always goes through the sharded pipeline, whatever
    ``workers`` says, because its point is *where* the work runs.
    """
    from repro.pipeline.parallel import ParallelOptions, build_dataset

    if (
        executor != "dispatch"
        and workers == 1
        and (shards is None or shards == 1)
    ):
        options = None
    else:
        options = ParallelOptions(
            workers=workers,
            shards=shards,
            executor=executor,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            strict=strict,
            worker_addrs=tuple(worker_addrs),
        )
    with span("pipeline.dataset_from_source"):
        return build_dataset(
            source,
            study_windows=study_windows,
            keep_response_sizes=keep_response_sizes,
            compute_naive=compute_naive,
            window_seconds=window_seconds,
            options=options,
            engine=engine,
        )


@dataclass(frozen=True)
class CdfSeries:
    """One CDF line: sorted x values and cumulative fractions.

    An empty series (a zero-session population split) is representable:
    its quantiles are ``None`` and its ``fraction_at_most`` is 0 — report
    renderers turn the ``None`` into ``n/a`` instead of raising.
    """

    label: str
    xs: List[float]
    fractions: List[float]

    @classmethod
    def of(cls, label: str, values: Sequence[float]) -> "CdfSeries":
        if not values:
            return cls(label=label, xs=[], fractions=[])
        xs, fractions = ecdf(values)
        return cls(label=label, xs=xs, fractions=fractions)

    def __len__(self) -> int:
        return len(self.xs)

    def fraction_at_most(self, x: float) -> float:
        import bisect

        index = bisect.bisect_right(self.xs, x)
        if index == 0:
            return 0.0
        return self.fractions[index - 1]

    def quantile(self, q: float) -> Optional[float]:
        if not self.xs:
            return None
        return percentile(self.xs, q * 100.0)


# --------------------------------------------------------------------- #
# Figure 1 — session duration and busy time
# --------------------------------------------------------------------- #
@dataclass
class Fig1Result:
    duration_all: CdfSeries
    duration_h1: CdfSeries
    duration_h2: CdfSeries
    busy_all: CdfSeries
    busy_h1: CdfSeries
    busy_h2: CdfSeries

    @property
    def under_one_second(self) -> float:
        return self.duration_all.fraction_at_most(1.0)

    @property
    def under_one_minute(self) -> float:
        return self.duration_all.fraction_at_most(60.0)

    @property
    def over_three_minutes(self) -> float:
        return 1.0 - self.duration_all.fraction_at_most(180.0)

    @property
    def mostly_idle_fraction(self) -> float:
        """Sessions active less than 10% of their lifetime."""
        return self.busy_all.fraction_at_most(0.10)


@traced("pipeline.fig1")
def fig1_session_behaviour(dataset: StudyDataset) -> Fig1Result:
    """Figure 1: session-duration and busy-time CDFs, split by protocol."""
    rows = dataset.rows
    h1 = [r for r in rows if not r.is_http2]
    h2 = [r for r in rows if r.is_http2]
    return Fig1Result(
        duration_all=CdfSeries.of("all", [r.duration for r in rows]),
        duration_h1=CdfSeries.of("http/1.1", [r.duration for r in h1]),
        duration_h2=CdfSeries.of("http/2", [r.duration for r in h2]),
        busy_all=CdfSeries.of("all", [r.busy_fraction for r in rows]),
        busy_h1=CdfSeries.of("http/1.1", [r.busy_fraction for r in h1]),
        busy_h2=CdfSeries.of("http/2", [r.busy_fraction for r in h2]),
    )


# --------------------------------------------------------------------- #
# Figure 2 — bytes per session / response / media response
# --------------------------------------------------------------------- #
@dataclass
class Fig2Result:
    session_bytes: CdfSeries
    response_bytes: CdfSeries
    media_response_bytes: CdfSeries

    @property
    def sessions_under_10kb(self) -> float:
        return self.session_bytes.fraction_at_most(10_000.0)

    @property
    def sessions_over_1mb(self) -> float:
        return 1.0 - self.session_bytes.fraction_at_most(1_000_000.0)

    @property
    def median_response(self) -> float:
        return self.response_bytes.quantile(0.5)


#: Fallback size threshold for traces whose samples predate media tagging.
MEDIA_RESPONSE_THRESHOLD_BYTES = 12_000


@traced("pipeline.fig2")
def fig2_transfer_sizes(dataset: StudyDataset) -> Fig2Result:
    """Figure 2: bytes per session, per response, and per media response."""
    sessions = [float(r.bytes_sent) for r in dataset.rows if r.bytes_sent > 0]
    responses: List[float] = []
    media: List[float] = []
    tagged = any(row.media_bytes for row in dataset.rows)
    for row in dataset.rows:
        responses.extend(float(size) for size in row.response_sizes)
        if tagged:
            media.extend(float(size) for size in row.media_bytes)
        else:
            # Untagged trace: fall back to the size heuristic.
            media.extend(
                float(size)
                for size in row.response_sizes
                if size >= MEDIA_RESPONSE_THRESHOLD_BYTES
            )
    return Fig2Result(
        session_bytes=CdfSeries.of("sessions", sessions),
        response_bytes=CdfSeries.of("all responses", responses),
        media_response_bytes=CdfSeries.of("media responses", media or [0.0]),
    )


# --------------------------------------------------------------------- #
# Figure 3 — transactions per session
# --------------------------------------------------------------------- #
@dataclass
class Fig3Result:
    count_all: CdfSeries
    count_h1: CdfSeries
    count_h2: CdfSeries
    heavy_session_byte_share: float  # bytes on sessions with >= 50 txns

    @property
    def h1_under_5(self) -> float:
        return self.count_h1.fraction_at_most(4.0)

    @property
    def h2_under_5(self) -> float:
        return self.count_h2.fraction_at_most(4.0)


@traced("pipeline.fig3")
def fig3_transaction_counts(dataset: StudyDataset) -> Fig3Result:
    """Figure 3: transactions per session and the heavy-session byte share."""
    rows = dataset.rows
    h1 = [r for r in rows if not r.is_http2]
    h2 = [r for r in rows if r.is_http2]
    total_bytes = sum(r.bytes_sent for r in rows) or 1
    heavy_bytes = sum(r.bytes_sent for r in rows if r.transaction_count >= 50)
    return Fig3Result(
        count_all=CdfSeries.of("all", [float(r.transaction_count) for r in rows]),
        count_h1=CdfSeries.of("http/1.1", [float(r.transaction_count) for r in h1]),
        count_h2=CdfSeries.of("http/2", [float(r.transaction_count) for r in h2]),
        heavy_session_byte_share=heavy_bytes / total_bytes,
    )


# --------------------------------------------------------------------- #
# Figure 4 — the goodput walkthrough (packet simulator)
# --------------------------------------------------------------------- #
@traced("pipeline.fig4")
def fig4_walkthrough():
    """Run the Figure-4 scenario; see
    :func:`repro.netsim.scenarios.run_figure4_scenario`."""
    from repro.netsim.scenarios import run_figure4_scenario

    return run_figure4_scenario()


# --------------------------------------------------------------------- #
# Figure 5 — client-population mixes move MinRTT_P50
# --------------------------------------------------------------------- #
@dataclass
class Fig5Result:
    """Per-window median MinRTT for the dual-metro group, split by region."""

    windows: List[int]
    all_clients: List[Optional[float]]
    primary_clients: List[Optional[float]]
    secondary_clients: List[Optional[float]]
    primary_label: str
    secondary_label: str

    def spread(self) -> float:
        """Max − min of the combined median across windows."""
        values = [v for v in self.all_clients if v is not None]
        return max(values) - min(values)


@traced("pipeline.fig5")
def fig5_population_mix(
    samples: Sequence, primary_tag: str = "sanfrancisco",
    secondary_tag: str = "honolulu", prefix: str = "198.51.0.0/16",
) -> Fig5Result:
    """Median MinRTT over time for a prefix spanning two regions.

    ``samples`` is the raw sample stream restricted (by the caller or here)
    to the Figure-5 network; the split uses the generator's geo tags the
    way the paper uses client geolocation.
    """
    from collections import defaultdict

    from repro.core.aggregation import window_index

    per_window: Dict[int, Dict[str, List[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for sample in samples:
        if sample.route is None or sample.route.prefix != prefix:
            continue
        if sample.route.preference_rank != 0:
            continue
        window = window_index(sample.end_time)
        per_window[window][sample.geo_tag].append(sample.min_rtt_ms)
        per_window[window]["__all__"].append(sample.min_rtt_ms)

    windows = sorted(per_window)

    def series(tag: str) -> List[Optional[float]]:
        out: List[Optional[float]] = []
        for window in windows:
            values = per_window[window].get(tag, [])
            out.append(percentile(values, 50.0) if len(values) >= 5 else None)
        return out

    return Fig5Result(
        windows=windows,
        all_clients=series("__all__"),
        primary_clients=series(primary_tag),
        secondary_clients=series(secondary_tag),
        primary_label=primary_tag,
        secondary_label=secondary_tag,
    )


# --------------------------------------------------------------------- #
# Figure 6 — global MinRTT / HDratio distributions
# --------------------------------------------------------------------- #
CONTINENT_CODES = ("AF", "AS", "EU", "NA", "OC", "SA")


@dataclass
class Fig6Result:
    minrtt_all: CdfSeries
    hdratio_all: CdfSeries
    minrtt_by_continent: Dict[str, CdfSeries]
    hdratio_by_continent: Dict[str, CdfSeries]

    @property
    def median_minrtt(self) -> float:
        return self.minrtt_all.quantile(0.5)

    @property
    def p80_minrtt(self) -> float:
        return self.minrtt_all.quantile(0.8)

    @property
    def hdratio_positive_fraction(self) -> Optional[float]:
        """Share of HD-testable sessions with HDratio > 0 (paper: >82%).

        ``None`` when no session was HD-testable (rendered as ``n/a``).
        """
        if not self.hdratio_all.xs:
            return None
        return 1.0 - self.hdratio_all.fraction_at_most(0.0)

    @property
    def hdratio_full_fraction(self) -> float:
        """Share with HDratio == 1 (paper: ~60%); 0 for an empty study."""
        xs = self.hdratio_all.xs
        if not xs:
            return 0.0
        full = sum(1 for x in xs if x >= 1.0)
        return full / len(xs)

    def continent_median_minrtt(self, code: str) -> float:
        return self.minrtt_by_continent[code].quantile(0.5)

    def continent_zero_hd_fraction(self, code: str) -> float:
        return self.hdratio_by_continent[code].fraction_at_most(0.0)


@traced("pipeline.fig6")
def fig6_global_performance(dataset: StudyDataset) -> Fig6Result:
    """Figure 6: MinRTT and HDratio distributions, global and per continent."""
    rows = dataset.rows
    hd_rows = dataset.hd_rows()
    minrtt_by = {}
    hd_by = {}
    for code in CONTINENT_CODES:
        continent_rows = [r for r in rows if r.continent == code]
        continent_hd = [r for r in hd_rows if r.continent == code]
        if continent_rows:
            minrtt_by[code] = CdfSeries.of(code, [r.min_rtt_ms for r in continent_rows])
        if continent_hd:
            hd_by[code] = CdfSeries.of(code, [r.hdratio for r in continent_hd])
    return Fig6Result(
        minrtt_all=CdfSeries.of("all", [r.min_rtt_ms for r in rows]),
        hdratio_all=CdfSeries.of("all", [r.hdratio for r in hd_rows]),
        minrtt_by_continent=minrtt_by,
        hdratio_by_continent=hd_by,
    )


# --------------------------------------------------------------------- #
# Figure 7 — HDratio by MinRTT bucket
# --------------------------------------------------------------------- #
#: Contiguous (low, high] MinRTT buckets; labels follow the paper's legend
#: ("0-30", "31-50", "51-80", "81+").
MINRTT_BUCKETS = ((0.0, 30.0), (30.0, 50.0), (50.0, 80.0), (80.0, math.inf))
_BUCKET_LABELS = ("0-30", "31-50", "51-80", "81+")


@dataclass
class Fig7Result:
    hdratio_by_bucket: Dict[str, CdfSeries]

    @staticmethod
    def bucket_label(bounds: Tuple[float, float]) -> str:
        index = MINRTT_BUCKETS.index(bounds)
        return _BUCKET_LABELS[index]

    def median_hdratio(self, label: str) -> float:
        return self.hdratio_by_bucket[label].quantile(0.5)

    def majority_achieves_some_hd(self, label: str) -> bool:
        """More than half the bucket's sessions have HDratio > 0."""
        return self.hdratio_by_bucket[label].fraction_at_most(0.0) < 0.5


@traced("pipeline.fig7")
def fig7_rtt_vs_hdratio(dataset: StudyDataset) -> Fig7Result:
    """Figure 7: HDratio distribution within each MinRTT bucket."""
    buckets: Dict[str, List[float]] = {
        Fig7Result.bucket_label(bounds): [] for bounds in MINRTT_BUCKETS
    }
    for row in dataset.hd_rows():
        for bounds in MINRTT_BUCKETS:
            if row.min_rtt_ms <= bounds[1]:
                buckets[Fig7Result.bucket_label(bounds)].append(row.hdratio)
                break
    return Fig7Result(
        hdratio_by_bucket={
            label: CdfSeries.of(label, values or [0.0])
            for label, values in buckets.items()
        }
    )


# --------------------------------------------------------------------- #
# Ablation — naive Btotal/Ttotal goodput vs the model (§4)
# --------------------------------------------------------------------- #
@dataclass
class AblationResult:
    model_median_hdratio: float
    naive_median_hdratio: float
    sessions: int

    @property
    def naive_underestimates(self) -> bool:
        return self.naive_median_hdratio < self.model_median_hdratio


@traced("pipeline.ablation_naive")
def ablation_naive_goodput(dataset: StudyDataset) -> AblationResult:
    """Compare the model HDratio against the naive estimator.

    Requires the dataset to have been built with ``compute_naive=True``.
    """
    pairs = [
        (row.hdratio, row.naive_hdratio)
        for row in dataset.rows
        if row.hdratio is not None and row.naive_hdratio is not None
    ]
    if not pairs:
        raise ValueError("dataset has no naive HDratio values")
    model = percentile([p[0] for p in pairs], 50.0)
    naive = percentile([p[1] for p in pairs], 50.0)
    return AblationResult(
        model_median_hdratio=model,
        naive_median_hdratio=naive,
        sessions=len(pairs),
    )
