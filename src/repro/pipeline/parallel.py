"""Sharded parallel analysis pipeline (§2.2.2 aggregation tier at scale).

The paper's aggregation tier digests per-(PoP, BGP prefix, country) groups
over 15-minute windows from every load balancer in the fleet; the serial
:class:`~repro.pipeline.dataset.StudyDataset` pass reproduces the math but
not the throughput. This module fans the same pass out over a worker pool
and merges the partial states back into a ``StudyDataset`` that is
**bit-identical** to the serial one — same rows in the same order, same
aggregation insertion order, same per-group medians and confidence
intervals. The equivalence is enforced by ``tests/test_pipeline_parallel.py``.

Two partitioning strategies, both exact:

- **group sharding** (in-memory streams): each sample is routed to shard
  ``crc32(str(UserGroupKey)) % num_shards``. Every (group, route rank,
  window) aggregation lives wholly inside one shard, so the merge step only
  has to restore global ordering. The hash is CRC32 of the group's string
  form — *not* Python's ``hash()``, which is salted per process and would
  make shard assignment non-deterministic across runs and workers.
- **chunk sharding** (trace files): the trace is split into independently
  readable chunks — newline-aligned byte ranges for JSONL, line blocks for
  gzip, partition-aligned :class:`~repro.store.StoreChunk` groups for
  columnar stores (see :func:`repro.pipeline.io.plan_chunks`) — and each
  worker parses and aggregates only its slice. Aggregations spanning
  chunks are folded together with
  :meth:`~repro.core.aggregation.Aggregation.merge` in order-key order.
  Store chunks carry interleaved sequence ranges (partitions are keyed by
  PoP and time band, not by stream position); the merger's order-key sort
  absorbs that, and every derived statistic is an order statistic or an
  integer sum, so the bit-identical guarantee holds for stores too.

Exactness argument: every sample carries a monotone *order key* (its
position in the stream, or its byte offset / line index in the file).
Workers preserve relative order within a partition, and the merger (a)
re-sorts rows by order key, (b) rebuilds the aggregation store inserting
keys by first-seen order key, and (c) concatenates each aggregation's raw
value lists in order-key order. Since the serial pass is a fold over the
same samples in the same order, every derived statistic — medians,
McKean–Schrader CIs, window tables, verdict series — is exactly equal.

Fault tolerance (DESIGN.md §9): a failing shard is retried with
exponential backoff (``max_retries`` × ``retry_backoff``), and a shard
that exhausts its retries is **quarantined** — the run completes on the
surviving shards and the merged dataset carries a :class:`DegradedLedger`
(``dataset.degraded``) naming every lost shard, its error, and the best
estimate of samples and store partitions lost with it. ``strict=True``
restores fail-fast: the first exhausted shard raises a typed
:class:`ShardError` naming the shard. Fault-free runs take the exact same
code path and stay bit-identical to the pre-retry pipeline.

Executor backends (DESIGN.md §13): execution is pluggable behind
:class:`ShardExecutor` — ``submit shard task → ShardResult`` with
order-independent, picklable partial states, so *where* shards run is
orthogonal to *what* they compute. Built in: ``serial`` (the determinism
baseline), ``thread`` / ``process`` (single-host pools), and ``dispatch``
(fan-out over :mod:`repro.dist` worker daemons reached by socket;
``worker_addrs`` names them). Third parties can plug in more via
:func:`register_executor`. Every backend is held to the same contract by
``tests/test_executor_contract.py``: byte-identical datasets and data
counters versus serial, and identical retry/quarantine accounting.
"""

from __future__ import annotations

import logging
import pathlib
import pickle
import time
import zlib
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import faultinject
from repro.core.aggregation import Aggregation
from repro.core.records import SessionSample, UserGroupKey
from repro.obs import (
    MetricsRegistry,
    active_metrics,
    merge_into_active,
    span,
)
from repro.pipeline.dataset import SessionRow, StudyDataset
from repro.pipeline.filters import FilterStats
from repro.pipeline.io import (
    PathLike,
    StoreChunk,
    TraceChunk,
    plan_chunks,
    read_chunk,
    read_samples,
)

__all__ = [
    "EXECUTORS",
    "LOCAL_EXECUTORS",
    "DegradedLedger",
    "ParallelOptions",
    "RemoteCause",
    "SerialExecutor",
    "ShardError",
    "ShardExecutor",
    "ShardResult",
    "build_dataset",
    "executor_for",
    "register_executor",
    "shard_of",
    "shard_samples",
]

_LOG = logging.getLogger("repro.pipeline.parallel")

#: Backends that run wholly inside this host (no daemons required).
LOCAL_EXECUTORS = ("process", "thread", "serial")
#: Every built-in backend ``ParallelOptions.executor`` accepts.
EXECUTORS = LOCAL_EXECUTORS + ("dispatch",)

AggregationKey = Tuple[UserGroupKey, int, int]
Source = Union[PathLike, Iterable[SessionSample]]


def shard_of(group: UserGroupKey, num_shards: int) -> int:
    """Deterministic shard index for a user group (stable across processes)."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return zlib.crc32(str(group).encode("utf-8")) % num_shards


def _sample_shard(sample: SessionSample, num_shards: int) -> int:
    prefix = sample.route.prefix if sample.route is not None else ""
    group = UserGroupKey(
        pop=sample.pop, prefix=prefix, country=sample.client_country
    )
    return shard_of(group, num_shards)


def shard_samples(
    samples: Iterable[SessionSample], num_shards: int
) -> List[List[Tuple[int, SessionSample]]]:
    """Partition a stream into per-shard ``(order_key, sample)`` lists.

    Within each shard the samples keep their stream order, so a shard-local
    fold sees them exactly as the serial pass would.
    """
    shards: List[List[Tuple[int, SessionSample]]] = [[] for _ in range(num_shards)]
    for index, sample in enumerate(samples):
        shards[_sample_shard(sample, num_shards)].append((index, sample))
    return shards


class RemoteCause(RuntimeError):
    """Stringified stand-in for an exception that cannot cross a pickle.

    Keeps the original type name and message so ledger entries and
    ``ShardError`` text stay as informative as the live exception was.
    """

    def __init__(self, type_name: str, message: str) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.message = message

    def __reduce__(self):
        # Default exception pickling would call cls(formatted_message) —
        # wrong arity. Rebuild from the real constructor.
        return (type(self), (self.type_name, self.message))


def _transportable_cause(cause: BaseException) -> BaseException:
    """``cause`` if it survives a pickle round trip, else a RemoteCause.

    A full ``loads(dumps(...))`` round trip, not just ``dumps``: some
    third-party exceptions serialize fine but blow up on load (custom
    ``__init__`` arity, unimportable modules on the other side).
    """
    try:
        pickle.loads(pickle.dumps(cause))
        return cause
    except Exception:  # noqa: BLE001 — any failure means "not transportable"
        return RemoteCause(type(cause).__name__, str(cause))


class ShardError(RuntimeError):
    """A shard worker failed for good; names the shard and keeps the cause.

    Raised by the executor when a shard exhausts its retries under
    ``strict`` mode (and available on the :class:`DegradedLedger` entries
    otherwise). ``shard_id`` is the task ordinal, ``cause`` the original
    worker exception, ``attempts`` how many times the shard ran.
    """

    def __init__(
        self, shard_id: int, cause: BaseException, attempts: int = 1
    ) -> None:
        super().__init__(
            f"shard {shard_id} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard_id = shard_id
        self.cause = cause
        self.attempts = attempts

    def __reduce__(self):
        # Default exception pickling re-invokes cls(*args) with the
        # formatted message; rebuild from the real constructor instead —
        # stringifying a cause that would poison the pickle (third-party
        # exceptions with custom arity travel as RemoteCause).
        return (
            type(self),
            (self.shard_id, _transportable_cause(self.cause), self.attempts),
        )


@dataclass
class DegradedLedger:
    """What a non-strict run lost to quarantined shards.

    ``shards`` holds one entry per quarantined shard: ``ordinal``, the
    stringified ``error``, ``attempts`` made, ``samples_lost`` (the shard's
    planned sample count, or ``None`` when the plan cannot know it — a
    JSONL byte-range chunk counts lines only when read), and
    ``partitions_skipped`` (store partitions the shard covered). ``retries``
    counts every re-run attempt across all shards, including ones that
    eventually succeeded. Falsy when nothing was lost, so
    ``if dataset.degraded`` reads naturally.
    """

    shards: List[dict] = field(default_factory=list)
    retries: int = 0

    def __bool__(self) -> bool:
        return bool(self.shards)

    @property
    def shards_lost(self) -> int:
        return len(self.shards)

    @property
    def samples_lost(self) -> int:
        """Known lost samples (lower bound when a shard's count is unknown)."""
        return sum(entry["samples_lost"] or 0 for entry in self.shards)

    @property
    def partitions_skipped(self) -> int:
        return sum(entry["partitions_skipped"] for entry in self.shards)

    def quarantine(
        self, task: "_ShardTask", error: BaseException, attempts: int
    ) -> None:
        self.shards.append(
            {
                "ordinal": task.ordinal,
                "error": f"{type(error).__name__}: {error}",
                "attempts": attempts,
                "samples_lost": task.expected_rows,
                "partitions_skipped": (
                    len(task.chunk.partition_ids)
                    if isinstance(task.chunk, StoreChunk)
                    else 0
                ),
            }
        )

    def summary(self) -> str:
        ordinals = ", ".join(str(entry["ordinal"]) for entry in self.shards)
        return (
            f"{self.shards_lost} shard(s) quarantined "
            f"(ordinal(s) {ordinals}); ~{self.samples_lost} sample(s) lost, "
            f"{self.partitions_skipped} store partition(s) skipped, "
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}"
        )

    def to_dict(self) -> dict:
        return {
            "shards_lost": self.shards_lost,
            "samples_lost": self.samples_lost,
            "partitions_skipped": self.partitions_skipped,
            "retries": self.retries,
            "shards": [dict(entry) for entry in self.shards],
        }


@dataclass(frozen=True)
class ParallelOptions:
    """How to fan the analysis out.

    ``workers`` is the pool size; ``shards`` the number of partitions
    (defaults to ``workers`` — more shards than workers is fine and can
    smooth load imbalance); ``executor`` selects ``process`` (true
    parallelism, samples/chunks are pickled to children), ``thread``
    (GIL-bound; useful when ingestion is I/O-dominated), ``serial``
    (same sharded code path, one task at a time — the determinism
    baseline), or ``dispatch`` (fan-out over :mod:`repro.dist` worker
    daemons; ``worker_addrs`` names them as ``host:port`` strings and is
    required for — and exclusive to — this backend).

    Fault handling: a failing shard is re-run up to ``max_retries`` times
    with exponential backoff (``retry_backoff * 2**(attempt-1)`` seconds
    between attempts) before being quarantined; ``strict=True`` raises
    :class:`ShardError` instead of quarantining. Under ``dispatch`` a
    dead worker's in-flight task counts one attempt and is reassigned to
    a surviving daemon through the same policy.
    """

    workers: int = 1
    shards: Optional[int] = None
    executor: str = "process"
    max_retries: int = 2
    retry_backoff: float = 0.05
    strict: bool = False
    worker_addrs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        object.__setattr__(self, "worker_addrs", tuple(self.worker_addrs))
        if self.executor == "dispatch" and not self.worker_addrs:
            raise ValueError(
                "executor 'dispatch' requires worker_addrs (host:port, ...)"
            )
        if self.worker_addrs and self.executor != "dispatch":
            raise ValueError(
                "worker_addrs is only meaningful with executor 'dispatch'"
            )

    @property
    def effective_shards(self) -> int:
        if self.shards is not None:
            return self.shards
        if self.executor == "dispatch":
            # One shard per daemon at minimum, more if workers asks for it.
            return max(self.workers, len(self.worker_addrs))
        return self.workers


@dataclass
class ShardResult:
    """Picklable partial state produced by one shard worker."""

    #: Task ordinal this result answers (results can complete out of order
    #: under retry; the merge sorts on this to restore the plan order).
    ordinal: int = 0
    rows: List[Tuple[int, SessionRow]] = field(default_factory=list)
    #: (first order key seen for the key, aggregation key, aggregation)
    aggregations: List[Tuple[int, AggregationKey, Aggregation]] = field(
        default_factory=list
    )
    filter_stats: FilterStats = field(default_factory=FilterStats)
    #: The worker dataset's own registry; counters here are data facts and
    #: sum commutatively across shards to exactly the serial counters.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Execution facts (never part of the counter-equality invariant).
    wall_seconds: float = 0.0
    samples_ingested: int = 0


@dataclass(frozen=True)
class _ShardTask:
    """One unit of worker input (either a sample list or a file chunk)."""

    dataset_kwargs: dict
    indexed_samples: Optional[List[Tuple[int, SessionSample]]] = None
    chunk: Optional[Union[TraceChunk, StoreChunk]] = None
    #: Position in the shard plan; names the shard in errors and ledgers.
    ordinal: int = 0
    #: Planned sample count (None when the plan cannot know it, e.g. a
    #: JSONL byte-range chunk). Feeds the degraded ledger's loss estimate.
    expected_rows: Optional[int] = None
    #: Analysis engine: ``"row"`` (the oracle StudyDataset fold) or
    #: ``"batch"`` (column kernels, :mod:`repro.kernels`). Both produce
    #: the same ShardResult shape, so retry/quarantine/merge are shared.
    engine: str = "row"


def _run_shard(task: _ShardTask) -> ShardResult:
    """Ingest one partition through the selected engine's fold."""
    faultinject.check_shard(task.ordinal)
    if task.engine == "batch":
        return _run_shard_batch(task)
    start = time.perf_counter()
    dataset = StudyDataset(**task.dataset_kwargs)
    if task.chunk is not None:
        source = read_chunk(task.chunk, metrics=dataset.metrics)
    else:
        source = iter(task.indexed_samples or [])
    result = ShardResult(
        ordinal=task.ordinal,
        filter_stats=dataset.filter_stats,
        metrics=dataset.metrics,
    )
    first_seen: Dict[AggregationKey, int] = {}
    for order_key, sample in source:
        result.samples_ingested += 1
        if not dataset.ingest_one(sample):
            continue
        result.rows.append((order_key, dataset.rows[-1]))
        key = dataset.store.key_for(sample)
        first_seen.setdefault(key, order_key)
    aggregations = dict(dataset.store.items())
    result.aggregations = [
        (first_seen[key], key, aggregations[key]) for key in aggregations
    ]
    result.wall_seconds = time.perf_counter() - start
    return result


def _run_shard_batch(task: _ShardTask) -> ShardResult:
    """Ingest one partition through the column-batch kernels.

    Same inputs, same ShardResult contract as the row fold — the batch
    ingestor's finalized rows/aggregations are already in the (order key,
    payload) shapes :func:`_merge_results` consumes, so the merger cannot
    tell the engines apart.
    """
    from repro.kernels.engine import BatchIngestor, batches_for_chunk, batches_from_pairs

    start = time.perf_counter()
    ingestor = BatchIngestor(**task.dataset_kwargs)
    if task.chunk is not None:
        batches = batches_for_chunk(task.chunk, metrics=ingestor.metrics)
    else:
        batches = batches_from_pairs(iter(task.indexed_samples or []))
    samples_ingested = 0
    for batch in batches:
        samples_ingested += len(batch)
        ingestor.ingest_batch(batch)
    rows, aggregations = ingestor.finalize()
    result = ShardResult(
        ordinal=task.ordinal,
        rows=rows,
        aggregations=aggregations,
        filter_stats=ingestor.filter_stats,
        metrics=ingestor.metrics,
        samples_ingested=samples_ingested,
    )
    result.wall_seconds = time.perf_counter() - start
    return result


def _on_shard_failure(
    task: _ShardTask,
    attempt: int,
    error: BaseException,
    options: ParallelOptions,
    ledger: DegradedLedger,
) -> Optional[float]:
    """Decide one failed attempt's fate.

    Returns the backoff delay (seconds) before the next attempt, or
    ``None`` when the shard is spent — quarantined into ``ledger``, or
    raised as :class:`ShardError` under ``strict``. Every worker failure
    flows through here, so every failure names its shard.
    """
    if attempt <= options.max_retries:
        ledger.retries += 1
        _LOG.warning(
            "shard %d attempt %d/%d failed (%s: %s); retrying",
            task.ordinal,
            attempt,
            options.max_retries + 1,
            type(error).__name__,
            error,
        )
        return options.retry_backoff * (2 ** (attempt - 1))
    if options.strict:
        raise ShardError(task.ordinal, error, attempt) from error
    ledger.quarantine(task, error, attempt)
    _LOG.warning(
        "shard %d quarantined after %d attempt(s): %s: %s",
        task.ordinal,
        attempt,
        type(error).__name__,
        error,
    )
    return None


def _run_shard_with_retry(
    task: _ShardTask, options: ParallelOptions, ledger: DegradedLedger
) -> Optional[ShardResult]:
    attempt = 1
    while True:
        try:
            return _run_shard(task)
        except Exception as error:  # noqa: BLE001 — fate decided below
            delay = _on_shard_failure(task, attempt, error, options, ledger)
            if delay is None:
                return None
            if delay > 0:
                time.sleep(delay)
            attempt += 1


# --------------------------------------------------------------------- #
# Executor interface (DESIGN.md §13)
# --------------------------------------------------------------------- #
class ShardExecutor:
    """Where shards run: takes a shard plan, returns surviving results.

    The contract every backend must honor (enforced for all built-ins by
    ``tests/test_executor_contract.py``):

    - ``run`` returns the surviving :class:`ShardResult`s sorted by task
      ordinal; quarantined shards are simply absent — ``ledger`` records
      them.
    - Every failed attempt is routed through :func:`_on_shard_failure`, so
      retry counting, quarantine accounting, and ``strict`` fail-fast are
      byte-identical across backends.
    - Shard execution itself is :func:`_run_shard` (or an exact remote
      proxy for it), so the data math cannot drift per backend.

    Because results are merged by order key, any backend satisfying this
    contract yields datasets bit-identical to the serial pass.
    """

    def __init__(self, options: ParallelOptions) -> None:
        self.options = options

    def run(
        self, tasks: Sequence[_ShardTask], ledger: DegradedLedger
    ) -> List[ShardResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent; default no-op)."""


class SerialExecutor(ShardExecutor):
    """One task at a time, in plan order — the determinism baseline."""

    def run(
        self, tasks: Sequence[_ShardTask], ledger: DegradedLedger
    ) -> List[ShardResult]:
        results = [
            _run_shard_with_retry(task, self.options, ledger)
            for task in tasks
        ]
        return [result for result in results if result is not None]


class _PoolExecutor(ShardExecutor):
    """Single-host pool backend over ``concurrent.futures``.

    Failed attempts are resubmitted to the pool (FIRST_COMPLETED wait loop)
    so a retry never blocks other shards' progress.
    """

    pool_cls = None  # type: ignore[assignment]

    def run(
        self, tasks: Sequence[_ShardTask], ledger: DegradedLedger
    ) -> List[ShardResult]:
        options = self.options
        results: List[ShardResult] = []
        with self.pool_cls(max_workers=min(options.workers, len(tasks))) as pool:
            pending = {
                pool.submit(_run_shard, task): (task, 1) for task in tasks
            }
            try:
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        task, attempt = pending.pop(future)
                        error = future.exception()
                        if error is None:
                            results.append(future.result())
                            continue
                        if not isinstance(error, Exception):
                            raise error  # KeyboardInterrupt and kin: not ours
                        delay = _on_shard_failure(
                            task, attempt, error, options, ledger
                        )
                        if delay is None:
                            continue
                        if delay > 0:
                            time.sleep(delay)
                        pending[pool.submit(_run_shard, task)] = (
                            task,
                            attempt + 1,
                        )
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
        results.sort(key=lambda result: result.ordinal)
        return results


class _ThreadExecutor(_PoolExecutor):
    pool_cls = ThreadPoolExecutor


class _ProcessExecutor(_PoolExecutor):
    pool_cls = ProcessPoolExecutor


def _dispatch_executor(options: ParallelOptions) -> ShardExecutor:
    # Imported lazily: repro.dist imports this module for the task/result
    # types, so a top-level import would be circular.
    from repro.dist.client import DispatchExecutor

    return DispatchExecutor(options)


_EXECUTOR_FACTORIES: Dict[str, Callable[[ParallelOptions], ShardExecutor]] = {
    "serial": SerialExecutor,
    "thread": _ThreadExecutor,
    "process": _ProcessExecutor,
    "dispatch": _dispatch_executor,
}


def register_executor(
    name: str, factory: Callable[[ParallelOptions], ShardExecutor]
) -> None:
    """Register (or replace) an executor backend under ``name``.

    ``factory`` takes the run's :class:`ParallelOptions` and returns a
    :class:`ShardExecutor`. Registered names are accepted by
    ``ParallelOptions(executor=...)`` only if also present in
    :data:`EXECUTORS`; test doubles usually replace a built-in instead.
    """
    _EXECUTOR_FACTORIES[name] = factory


def executor_for(options: ParallelOptions) -> ShardExecutor:
    """Build the executor backend the options name."""
    try:
        factory = _EXECUTOR_FACTORIES[options.executor]
    except KeyError:
        raise ValueError(
            f"no executor backend registered as {options.executor!r}"
        ) from None
    return factory(options)


def _execute(
    tasks: Sequence[_ShardTask],
    options: ParallelOptions,
    ledger: DegradedLedger,
) -> List[ShardResult]:
    """Run the shard plan; returns surviving results in plan order.

    Quarantined shards (non-strict, retries exhausted) are simply absent
    from the returned list — the ledger records them.
    """
    if not tasks:
        return []
    # A one-task plan gains nothing from a pool — run it inline. Dispatch
    # is exempt: its point is *where* the task runs, not concurrency.
    if options.executor == "serial" or (
        len(tasks) == 1 and options.executor != "dispatch"
    ):
        return SerialExecutor(options).run(tasks, ledger)
    executor = executor_for(options)
    try:
        return executor.run(tasks, ledger)
    finally:
        executor.close()


def _merge_results(dataset: StudyDataset, results: Iterable[ShardResult]) -> StudyDataset:
    """Fold shard results into ``dataset``, restoring exact serial order."""
    indexed_rows: List[Tuple[int, SessionRow]] = []
    parts: Dict[AggregationKey, List[Tuple[int, Aggregation]]] = {}
    for result in results:
        indexed_rows.extend(result.rows)
        dataset.filter_stats.merge(result.filter_stats)
        dataset.metrics.merge(result.metrics)
        dataset.metrics.observe("pipeline.shard_wall_seconds", result.wall_seconds)
        dataset.shard_report.append(
            {
                "ordinal": result.ordinal,
                "samples": result.samples_ingested,
                "rows_kept": len(result.rows),
                "wall_seconds": result.wall_seconds,
            }
        )
        for first_index, key, aggregation in result.aggregations:
            parts.setdefault(key, []).append((first_index, aggregation))
    indexed_rows.sort(key=lambda item: item[0])
    dataset.rows.extend(row for _, row in indexed_rows)
    for key in sorted(parts, key=lambda k: min(i for i, _ in parts[k])):
        pieces = sorted(parts[key], key=lambda item: item[0])
        merged = pieces[0][1]
        for _, piece in pieces[1:]:
            merged.merge(piece)
        dataset.store.put(key, merged)
    return dataset


def build_dataset(
    source: Source,
    *,
    study_windows: int,
    keep_response_sizes: bool = True,
    compute_naive: bool = False,
    window_seconds: float = 900.0,
    options: Optional[ParallelOptions] = None,
    engine: str = "row",
) -> StudyDataset:
    """Build a :class:`StudyDataset` from a trace file or sample stream.

    With ``options`` absent (or one shard under the serial executor) this
    is exactly ``StudyDataset(...).ingest(...)``. Otherwise the source is
    partitioned — JSONL traces into byte-range/line-block chunks, columnar
    stores into partition-aligned chunks, in-memory streams by group hash —
    executed per ``options``, and merged back into a dataset whose state is
    bit-identical to the serial pass.

    ``engine`` selects the analysis path: ``"row"`` is the per-record
    oracle fold; ``"batch"`` runs the same methodology over column arrays
    (:mod:`repro.kernels`) with byte-identical reports, figures, and data
    counters — the equivalence the differential suite enforces
    (``tests/test_batch_equivalence.py``).

    Sharded runs tolerate shard failures per the options' retry policy:
    shards that exhaust their retries under non-strict mode are quarantined
    and the returned dataset's ``degraded`` attribute holds the
    :class:`DegradedLedger` (``None`` on a clean run). The active metrics
    registry receives the ``fault.*`` execution counters
    (``fault.shard_retries``, ``fault.shards_quarantined``,
    ``fault.samples_lost``, ``fault.partitions_skipped``) only when
    non-zero, so clean manifests are unchanged.
    """
    if engine not in ("row", "batch"):
        raise ValueError(f"engine must be 'row' or 'batch', not {engine!r}")
    dataset_kwargs = dict(
        study_windows=study_windows,
        keep_response_sizes=keep_response_sizes,
        compute_naive=compute_naive,
        window_seconds=window_seconds,
    )
    dataset = StudyDataset(**dataset_kwargs)
    is_path = isinstance(source, (str, pathlib.Path))
    options = options or ParallelOptions(workers=1, executor="serial")
    ledger = DegradedLedger()
    with span("pipeline.ingest"):
        if options.effective_shards == 1 and options.executor == "serial":
            with span("serial"):
                if engine == "batch":
                    from repro.kernels.engine import (
                        BatchIngestor,
                        fold_into_dataset,
                        iter_batches,
                    )

                    ingestor = BatchIngestor(**dataset_kwargs)
                    for batch in iter_batches(
                        source, metrics=ingestor.metrics
                    ):
                        ingestor.ingest_batch(batch)
                    fold_into_dataset(dataset, ingestor)
                else:
                    dataset.ingest(
                        read_samples(source, metrics=dataset.metrics)
                        if is_path
                        else source
                    )
        else:
            with span("plan"):
                if is_path:
                    tasks = [
                        _ShardTask(
                            dataset_kwargs=dataset_kwargs,
                            chunk=chunk,
                            ordinal=index,
                            expected_rows=_planned_rows(chunk),
                            engine=engine,
                        )
                        for index, chunk in enumerate(
                            plan_chunks(source, options.effective_shards)
                        )
                    ]
                else:
                    shards = [
                        shard
                        for shard in shard_samples(
                            source, options.effective_shards
                        )
                        if shard
                    ]
                    tasks = [
                        _ShardTask(
                            dataset_kwargs=dataset_kwargs,
                            indexed_samples=shard,
                            ordinal=index,
                            expected_rows=len(shard),
                            engine=engine,
                        )
                        for index, shard in enumerate(shards)
                    ]
            with span("execute"):
                results = _execute(tasks, options, ledger)
            with span("merge"):
                _merge_results(dataset, results)
    # Dataset-shape gauges are plan-invariant (same rows and store whatever
    # the shard plan), so they participate in the equality invariant too.
    dataset.metrics.set_gauge("pipeline.rows", len(dataset.rows))
    dataset.metrics.set_gauge("pipeline.aggregations", len(dataset.store))
    dataset.metrics.set_gauge("pipeline.groups", len(dataset.store.groups()))
    # Fault counters are execution facts: they describe how *this* run
    # fared, not the data, so they go to the active registry only — and
    # only when non-zero, keeping clean runs' manifests unchanged.
    registry = active_metrics()
    if registry is not None:
        if ledger.retries:
            registry.inc("fault.shard_retries", ledger.retries)
        if ledger:
            registry.inc("fault.shards_quarantined", ledger.shards_lost)
            registry.inc("fault.samples_lost", ledger.samples_lost)
            registry.inc("fault.partitions_skipped", ledger.partitions_skipped)
    dataset.degraded = ledger if ledger else None
    merge_into_active(dataset.metrics)
    return dataset


def _planned_rows(chunk: Union[TraceChunk, StoreChunk]) -> Optional[int]:
    """Best planned row count for a chunk (None when the plan can't know)."""
    if isinstance(chunk, StoreChunk) and chunk.rows > 0:
        return chunk.rows
    return None
