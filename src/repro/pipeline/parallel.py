"""Sharded parallel analysis pipeline (§2.2.2 aggregation tier at scale).

The paper's aggregation tier digests per-(PoP, BGP prefix, country) groups
over 15-minute windows from every load balancer in the fleet; the serial
:class:`~repro.pipeline.dataset.StudyDataset` pass reproduces the math but
not the throughput. This module fans the same pass out over a worker pool
and merges the partial states back into a ``StudyDataset`` that is
**bit-identical** to the serial one — same rows in the same order, same
aggregation insertion order, same per-group medians and confidence
intervals. The equivalence is enforced by ``tests/test_pipeline_parallel.py``.

Two partitioning strategies, both exact:

- **group sharding** (in-memory streams): each sample is routed to shard
  ``crc32(str(UserGroupKey)) % num_shards``. Every (group, route rank,
  window) aggregation lives wholly inside one shard, so the merge step only
  has to restore global ordering. The hash is CRC32 of the group's string
  form — *not* Python's ``hash()``, which is salted per process and would
  make shard assignment non-deterministic across runs and workers.
- **chunk sharding** (trace files): the trace is split into independently
  readable chunks — newline-aligned byte ranges for JSONL, line blocks for
  gzip, partition-aligned :class:`~repro.store.StoreChunk` groups for
  columnar stores (see :func:`repro.pipeline.io.plan_chunks`) — and each
  worker parses and aggregates only its slice. Aggregations spanning
  chunks are folded together with
  :meth:`~repro.core.aggregation.Aggregation.merge` in order-key order.
  Store chunks carry interleaved sequence ranges (partitions are keyed by
  PoP and time band, not by stream position); the merger's order-key sort
  absorbs that, and every derived statistic is an order statistic or an
  integer sum, so the bit-identical guarantee holds for stores too.

Exactness argument: every sample carries a monotone *order key* (its
position in the stream, or its byte offset / line index in the file).
Workers preserve relative order within a partition, and the merger (a)
re-sorts rows by order key, (b) rebuilds the aggregation store inserting
keys by first-seen order key, and (c) concatenates each aggregation's raw
value lists in order-key order. Since the serial pass is a fold over the
same samples in the same order, every derived statistic — medians,
McKean–Schrader CIs, window tables, verdict series — is exactly equal.
"""

from __future__ import annotations

import pathlib
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.aggregation import Aggregation
from repro.core.records import SessionSample, UserGroupKey
from repro.obs import MetricsRegistry, merge_into_active, span
from repro.pipeline.dataset import SessionRow, StudyDataset
from repro.pipeline.filters import FilterStats
from repro.pipeline.io import (
    PathLike,
    StoreChunk,
    TraceChunk,
    plan_chunks,
    read_chunk,
    read_samples,
)

__all__ = [
    "EXECUTORS",
    "ParallelOptions",
    "ShardResult",
    "build_dataset",
    "shard_of",
    "shard_samples",
]

EXECUTORS = ("process", "thread", "serial")

AggregationKey = Tuple[UserGroupKey, int, int]
Source = Union[PathLike, Iterable[SessionSample]]


def shard_of(group: UserGroupKey, num_shards: int) -> int:
    """Deterministic shard index for a user group (stable across processes)."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return zlib.crc32(str(group).encode("utf-8")) % num_shards


def _sample_shard(sample: SessionSample, num_shards: int) -> int:
    prefix = sample.route.prefix if sample.route is not None else ""
    group = UserGroupKey(
        pop=sample.pop, prefix=prefix, country=sample.client_country
    )
    return shard_of(group, num_shards)


def shard_samples(
    samples: Iterable[SessionSample], num_shards: int
) -> List[List[Tuple[int, SessionSample]]]:
    """Partition a stream into per-shard ``(order_key, sample)`` lists.

    Within each shard the samples keep their stream order, so a shard-local
    fold sees them exactly as the serial pass would.
    """
    shards: List[List[Tuple[int, SessionSample]]] = [[] for _ in range(num_shards)]
    for index, sample in enumerate(samples):
        shards[_sample_shard(sample, num_shards)].append((index, sample))
    return shards


@dataclass(frozen=True)
class ParallelOptions:
    """How to fan the analysis out.

    ``workers`` is the pool size; ``shards`` the number of partitions
    (defaults to ``workers`` — more shards than workers is fine and can
    smooth load imbalance); ``executor`` selects ``process`` (true
    parallelism, samples/chunks are pickled to children), ``thread``
    (GIL-bound; useful when ingestion is I/O-dominated), or ``serial``
    (same sharded code path, one task at a time — the determinism
    baseline).
    """

    workers: int = 1
    shards: Optional[int] = None
    executor: str = "process"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")

    @property
    def effective_shards(self) -> int:
        return self.shards if self.shards is not None else self.workers


@dataclass
class ShardResult:
    """Picklable partial state produced by one shard worker."""

    rows: List[Tuple[int, SessionRow]] = field(default_factory=list)
    #: (first order key seen for the key, aggregation key, aggregation)
    aggregations: List[Tuple[int, AggregationKey, Aggregation]] = field(
        default_factory=list
    )
    filter_stats: FilterStats = field(default_factory=FilterStats)
    #: The worker dataset's own registry; counters here are data facts and
    #: sum commutatively across shards to exactly the serial counters.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Execution facts (never part of the counter-equality invariant).
    wall_seconds: float = 0.0
    samples_ingested: int = 0


@dataclass(frozen=True)
class _ShardTask:
    """One unit of worker input (either a sample list or a file chunk)."""

    dataset_kwargs: dict
    indexed_samples: Optional[List[Tuple[int, SessionSample]]] = None
    chunk: Optional[Union[TraceChunk, StoreChunk]] = None


def _run_shard(task: _ShardTask) -> ShardResult:
    """Ingest one partition through the ordinary ``StudyDataset`` fold."""
    start = time.perf_counter()
    dataset = StudyDataset(**task.dataset_kwargs)
    if task.chunk is not None:
        source = read_chunk(task.chunk, metrics=dataset.metrics)
    else:
        source = iter(task.indexed_samples or [])
    result = ShardResult(
        filter_stats=dataset.filter_stats, metrics=dataset.metrics
    )
    first_seen: Dict[AggregationKey, int] = {}
    for order_key, sample in source:
        result.samples_ingested += 1
        if not dataset.ingest_one(sample):
            continue
        result.rows.append((order_key, dataset.rows[-1]))
        key = dataset.store.key_for(sample)
        first_seen.setdefault(key, order_key)
    aggregations = dict(dataset.store.items())
    result.aggregations = [
        (first_seen[key], key, aggregations[key]) for key in aggregations
    ]
    result.wall_seconds = time.perf_counter() - start
    return result


def _execute(tasks: Sequence[_ShardTask], options: ParallelOptions) -> List[ShardResult]:
    if not tasks:
        return []
    if options.executor == "serial" or len(tasks) == 1:
        return [_run_shard(task) for task in tasks]
    pool_cls = (
        ThreadPoolExecutor if options.executor == "thread" else ProcessPoolExecutor
    )
    with pool_cls(max_workers=min(options.workers, len(tasks))) as pool:
        return list(pool.map(_run_shard, tasks))


def _merge_results(dataset: StudyDataset, results: Iterable[ShardResult]) -> StudyDataset:
    """Fold shard results into ``dataset``, restoring exact serial order."""
    indexed_rows: List[Tuple[int, SessionRow]] = []
    parts: Dict[AggregationKey, List[Tuple[int, Aggregation]]] = {}
    for ordinal, result in enumerate(results):
        indexed_rows.extend(result.rows)
        dataset.filter_stats.merge(result.filter_stats)
        dataset.metrics.merge(result.metrics)
        dataset.metrics.observe("pipeline.shard_wall_seconds", result.wall_seconds)
        dataset.shard_report.append(
            {
                "ordinal": ordinal,
                "samples": result.samples_ingested,
                "rows_kept": len(result.rows),
                "wall_seconds": result.wall_seconds,
            }
        )
        for first_index, key, aggregation in result.aggregations:
            parts.setdefault(key, []).append((first_index, aggregation))
    indexed_rows.sort(key=lambda item: item[0])
    dataset.rows.extend(row for _, row in indexed_rows)
    for key in sorted(parts, key=lambda k: min(i for i, _ in parts[k])):
        pieces = sorted(parts[key], key=lambda item: item[0])
        merged = pieces[0][1]
        for _, piece in pieces[1:]:
            merged.merge(piece)
        dataset.store.put(key, merged)
    return dataset


def build_dataset(
    source: Source,
    *,
    study_windows: int,
    keep_response_sizes: bool = True,
    compute_naive: bool = False,
    window_seconds: float = 900.0,
    options: Optional[ParallelOptions] = None,
) -> StudyDataset:
    """Build a :class:`StudyDataset` from a trace file or sample stream.

    With ``options`` absent (or one shard under the serial executor) this
    is exactly ``StudyDataset(...).ingest(...)``. Otherwise the source is
    partitioned — JSONL traces into byte-range/line-block chunks, columnar
    stores into partition-aligned chunks, in-memory streams by group hash —
    executed per ``options``, and merged back into a dataset whose state is
    bit-identical to the serial pass.
    """
    dataset_kwargs = dict(
        study_windows=study_windows,
        keep_response_sizes=keep_response_sizes,
        compute_naive=compute_naive,
        window_seconds=window_seconds,
    )
    dataset = StudyDataset(**dataset_kwargs)
    is_path = isinstance(source, (str, pathlib.Path))
    options = options or ParallelOptions(workers=1, executor="serial")
    with span("pipeline.ingest"):
        if options.effective_shards == 1 and options.executor == "serial":
            with span("serial"):
                dataset.ingest(
                    read_samples(source, metrics=dataset.metrics)
                    if is_path
                    else source
                )
        else:
            with span("plan"):
                if is_path:
                    tasks = [
                        _ShardTask(dataset_kwargs=dataset_kwargs, chunk=chunk)
                        for chunk in plan_chunks(source, options.effective_shards)
                    ]
                else:
                    tasks = [
                        _ShardTask(
                            dataset_kwargs=dataset_kwargs, indexed_samples=shard
                        )
                        for shard in shard_samples(
                            source, options.effective_shards
                        )
                        if shard
                    ]
            with span("execute"):
                results = _execute(tasks, options)
            with span("merge"):
                _merge_results(dataset, results)
    # Dataset-shape gauges are plan-invariant (same rows and store whatever
    # the shard plan), so they participate in the equality invariant too.
    dataset.metrics.set_gauge("pipeline.rows", len(dataset.rows))
    dataset.metrics.set_gauge("pipeline.aggregations", len(dataset.store))
    dataset.metrics.set_gauge("pipeline.groups", len(dataset.store.groups()))
    merge_into_active(dataset.metrics)
    return dataset
