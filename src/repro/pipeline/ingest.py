"""Always-on streaming ingest: watermarked windows over an unbounded stream.

The paper's production pipeline is continuous — per-(PoP, prefix, country)
aggregations over 15-minute windows, degradation baselines maintained over
the trailing 14 days (§4–§5) — while the rest of this reproduction
re-scans saved batches. :class:`StreamingIngestor` is the continuous mode:
sessions are offered one at a time in roughly event-time order, buffered
per window, and **sealed** by an event-time watermark:

- The watermark is ``max(end_time seen) − allowed_lateness``. Window ``w``
  (covering ``[w·W, (w+1)·W)`` seconds) seals once the watermark passes its
  end; windows seal in ascending order, and empty windows in between are
  sealed too, so the sealed-window record is gapless and monotone.
- A sample whose window already sealed is **late beyond the lateness
  bound**: it is counted (``stream.late_samples``), routed to the
  :class:`LateSampleLedger`, and never touches sealed state — the
  generalization of the :class:`~repro.pipeline.streaming.StreamingRouteMonitor`
  late-sample fix to the whole analysis pipeline.
- At seal, the window's samples are sorted into **canonical order**
  ``(end_time, session_id)`` before ingestion. Window membership depends
  only on ``end_time``, so any arrival order that respects the lateness
  bound yields byte-identical output — the replay-equivalence invariant.

Sealed windows feed three sinks, in canonical order:

1. the :class:`~repro.pipeline.dataset.StudyDataset` (rows, aggregations,
   filter accounting — the same single-pass fold the batch engine runs);
2. the output store, appended as new CRC'd, prunable partitions
   (:func:`repro.store.append_to_store`) — *unfiltered*, so a batch
   re-scan of the store reproduces the exact filtering decisions;
3. the :class:`OnlineTemporalAnalyzer` — §5 degradation verdicts against a
   trailing baseline and the uneventful/diurnal/episodic classifier,
   re-evaluated incrementally as each window seals.

**Standing invariant** (enforced by ``tests/test_pipeline_ingest.py``):
replaying the sealed output store batch-style produces a byte-identical
dataset — same rows, same aggregation store, same filter stats, same
data-fact counters, same figures — including when the live stream arrived
shuffled within the lateness bound. Store scan order is sequence order,
sequences are assigned at seal in canonical order, so the batch re-scan
*is* the canonical replay.

Counter discipline: everything the ingestor learns about the *data* lands
in the dataset's own registry (the serial-vs-parallel equality machinery
covers it); everything about this *execution* — ``stream.*`` — goes to the
ingestor's registry only, like the ``fault.*`` counters of a degraded run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.aggregation import Aggregation, window_index
from repro.core.classification import GroupClassification, classify_group
from repro.core.comparison import WindowVerdict, _one_sample_verdict, compute_baseline
from repro.core.constants import (
    AGGREGATION_WINDOW_SECONDS,
    DEFAULT_HDRATIO_THRESHOLD,
    DEFAULT_MINRTT_THRESHOLD_MS,
    MAX_CI_WIDTH_HDRATIO,
    MAX_CI_WIDTH_MINRTT_MS,
)
from repro.core.records import SessionSample, UserGroupKey
from repro.obs import MetricsRegistry
from repro.pipeline.dataset import StudyDataset

__all__ = [
    "DEFAULT_ALLOWED_LATENESS_SECONDS",
    "DEFAULT_BASELINE_WINDOWS",
    "DegradationAlert",
    "IngestResult",
    "LateSampleLedger",
    "OnlineTemporalAnalyzer",
    "StreamingIngestor",
]

#: Two aggregation windows of allowed lateness — generous for a pipeline
#: whose collection tier ships state off the load balancer within seconds,
#: tight enough that sealed windows lag real time by half an hour at most.
DEFAULT_ALLOWED_LATENESS_SECONDS = 2 * AGGREGATION_WINDOW_SECONDS

#: The paper's 14-day degradation baseline, in 15-minute windows.
DEFAULT_BASELINE_WINDOWS = 14 * 96


class LateSampleLedger:
    """Side ledger for samples that arrived after their window sealed.

    Late samples never enter sealed state, but they are not silently
    dropped either: the ledger keeps a full per-window count and retains
    up to ``max_retained`` of the samples themselves (bounded memory) for
    offline backfill or debugging.
    """

    def __init__(self, max_retained: int = 1000) -> None:
        self.max_retained = max_retained
        self.count = 0
        self.per_window: Dict[int, int] = {}
        self.retained: List[SessionSample] = []

    def record(self, sample: SessionSample, window: int) -> None:
        self.count += 1
        self.per_window[window] = self.per_window.get(window, 0) + 1
        if len(self.retained) < self.max_retained:
            self.retained.append(sample)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "retained": len(self.retained),
            "per_window": {
                str(window): count
                for window, count in sorted(self.per_window.items())
            },
        }


@dataclass(frozen=True)
class DegradationAlert:
    """One online §5 degradation event: a sealed window whose metric sits
    above the group's trailing baseline with CI-lower-bound confidence."""

    group: UserGroupKey
    window: int
    metric: str  # "minrtt" | "hdratio"
    difference: float
    ci_low: float
    traffic_bytes: int


class OnlineTemporalAnalyzer:
    """Incremental §5 temporal analysis over sealed windows.

    The batch pipeline computes each group's baseline over its whole
    series, then judges every window against it. Online, the baseline is
    *trailing*: each sealed window is judged against the baseline of the
    previous ``baseline_windows`` sealed windows (the paper's 14 days),
    after at least ``min_baseline_windows`` windows of history exist —
    exactly the alerting loop a production deployment runs.

    Per group and metric the analyzer keeps the full verdict series, so
    :meth:`classifications` can re-run the uneventful / continuous /
    diurnal / episodic classifier at any point in the stream using the
    windows sealed *so far* as the study period.
    """

    def __init__(
        self,
        baseline_windows: int = DEFAULT_BASELINE_WINDOWS,
        min_baseline_windows: int = 4,
        minrtt_threshold_ms: float = DEFAULT_MINRTT_THRESHOLD_MS,
        hdratio_threshold: float = DEFAULT_HDRATIO_THRESHOLD,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if baseline_windows < 1:
            raise ValueError("baseline_windows must be >= 1")
        self.baseline_windows = baseline_windows
        self.min_baseline_windows = min_baseline_windows
        self.minrtt_threshold_ms = minrtt_threshold_ms
        self.hdratio_threshold = hdratio_threshold
        self.metrics = metrics
        self.alerts: List[DegradationAlert] = []
        self._series: Dict[UserGroupKey, List[Aggregation]] = {}
        self._verdicts: Dict[Tuple[UserGroupKey, str], List[WindowVerdict]] = {}
        self._windows_sealed = 0

    def on_window_sealed(
        self, window: int, aggregations: Dict[UserGroupKey, Aggregation]
    ) -> List[DegradationAlert]:
        """Judge one sealed window's preferred-route aggregations.

        ``aggregations`` maps each group to its rank-0 aggregation for
        this window (groups without preferred-route traffic are simply
        absent, matching ``degradation_series`` skipping them). Returns
        the alerts this window raised (also accumulated on ``alerts``).
        """
        self._windows_sealed += 1
        raised: List[DegradationAlert] = []
        for group in sorted(
            aggregations, key=lambda g: (g.pop, g.prefix, g.country)
        ):
            aggregation = aggregations[group]
            history = self._series.setdefault(group, [])
            if len(history) >= self.min_baseline_windows:
                baseline = compute_baseline(history[-self.baseline_windows :])
                raised.extend(
                    self._judge(group, window, aggregation, baseline)
                )
            history.append(aggregation)
        self.alerts.extend(raised)
        if self.metrics is not None and raised:
            self.metrics.inc("stream.alerts", len(raised))
        return raised

    def _judge(self, group, window, aggregation, baseline):
        raised = []
        if baseline.minrtt_p50_ms is not None:
            verdict = _one_sample_verdict(
                window,
                aggregation.min_rtts_ms,
                baseline.minrtt_p50_ms,
                orientation=+1.0,
                max_ci_width=MAX_CI_WIDTH_MINRTT_MS,
                traffic_bytes=aggregation.traffic_bytes,
            )
            self._verdicts.setdefault((group, "minrtt"), []).append(verdict)
            if verdict.event_at(self.minrtt_threshold_ms):
                raised.append(
                    DegradationAlert(
                        group=group,
                        window=window,
                        metric="minrtt",
                        difference=verdict.difference,
                        ci_low=verdict.ci_low,
                        traffic_bytes=verdict.traffic_bytes,
                    )
                )
        if baseline.hdratio_p50 is not None and len(aggregation.hdratios):
            verdict = _one_sample_verdict(
                window,
                aggregation.hdratios,
                baseline.hdratio_p50,
                orientation=-1.0,
                max_ci_width=MAX_CI_WIDTH_HDRATIO,
                traffic_bytes=aggregation.traffic_bytes,
            )
            self._verdicts.setdefault((group, "hdratio"), []).append(verdict)
            if verdict.event_at(self.hdratio_threshold):
                raised.append(
                    DegradationAlert(
                        group=group,
                        window=window,
                        metric="hdratio",
                        difference=verdict.difference,
                        ci_low=verdict.ci_low,
                        traffic_bytes=verdict.traffic_bytes,
                    )
                )
        return raised

    def classifications(
        self, metric: str = "minrtt"
    ) -> Dict[UserGroupKey, GroupClassification]:
        """Current §5 temporal class per group, over the stream so far."""
        if metric not in ("minrtt", "hdratio"):
            raise ValueError("metric must be 'minrtt' or 'hdratio'")
        threshold = (
            self.minrtt_threshold_ms
            if metric == "minrtt"
            else self.hdratio_threshold
        )
        # Coverage is judged over the windows that *could* carry a verdict:
        # the warm-up windows spent building the first baseline can't, and
        # counting them would leave every group unclassified early on.
        study_windows = max(self._windows_sealed - self.min_baseline_windows, 1)
        return {
            group: classify_group(verdicts, threshold, study_windows)
            for (group, verdict_metric), verdicts in self._verdicts.items()
            if verdict_metric == metric
        }


@dataclass
class IngestResult:
    """Everything a finished (or snapshotted) streaming run produced."""

    dataset: StudyDataset
    alerts: List[DegradationAlert]
    classifications: Dict[UserGroupKey, GroupClassification]
    late: LateSampleLedger
    windows_sealed: int
    windows_empty: int
    samples_offered: int
    samples_sealed: int

    def class_counts(self) -> Dict[str, int]:
        """Histogram of temporal classes over classified groups."""
        counts: Dict[str, int] = {}
        for classification in self.classifications.values():
            label = (
                classification.temporal_class.value
                if classification.temporal_class is not None
                else "unclassified"
            )
            counts[label] = counts.get(label, 0) + 1
        return counts


class StreamingIngestor:
    """Long-running ingest: offer samples, seal windows, analyze online.

    See the module docstring for the watermark/lateness/replay semantics.
    ``out_store`` is the optional sealed-window store (a ``*.store``
    directory, created on first seal); ``metrics`` is the *execution*
    registry receiving the ``stream.*`` counters (defaults to a fresh
    registry; pass :func:`repro.obs.active_metrics` output to surface them
    in a run manifest). Data-fact counters accumulate in
    ``self.dataset.metrics`` exactly as a batch build's would.
    """

    def __init__(
        self,
        study_windows: int,
        window_seconds: float = AGGREGATION_WINDOW_SECONDS,
        allowed_lateness_seconds: float = DEFAULT_ALLOWED_LATENESS_SECONDS,
        out_store=None,
        band_windows: Optional[int] = None,
        compress: bool = True,
        keep_response_sizes: bool = True,
        compute_naive: bool = False,
        analyzer: Optional[OnlineTemporalAnalyzer] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_retained_late: int = 1000,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if allowed_lateness_seconds < 0:
            raise ValueError("allowed_lateness_seconds must be >= 0")
        self.window_seconds = window_seconds
        self.allowed_lateness_seconds = allowed_lateness_seconds
        self.out_store = out_store
        self.band_windows = band_windows
        self.compress = compress
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dataset = StudyDataset(
            study_windows=study_windows,
            keep_response_sizes=keep_response_sizes,
            compute_naive=compute_naive,
            window_seconds=window_seconds,
        )
        self.analyzer = (
            analyzer
            if analyzer is not None
            else OnlineTemporalAnalyzer(metrics=self.metrics)
        )
        if self.analyzer.metrics is None:
            self.analyzer.metrics = self.metrics
        self.late = LateSampleLedger(max_retained=max_retained_late)
        self._pending: Dict[int, List[SessionSample]] = {}
        self._watermark = -math.inf
        #: Next window index to seal; ``None`` until the first seal decides
        #: where the gapless sealed record starts.
        self._next_seal: Optional[int] = None
        self._windows_sealed = 0
        self._windows_empty = 0
        self._samples_offered = 0
        self._samples_sealed = 0
        self._finished = False

    # ------------------------------------------------------------------ #
    @property
    def watermark(self) -> float:
        """Event-time watermark: ``max(end_time) − allowed_lateness``."""
        return self._watermark

    @property
    def windows_sealed(self) -> int:
        return self._windows_sealed

    def offer(self, sample: SessionSample) -> bool:
        """Feed one sample; returns False when it was late (ledgered)."""
        if self._finished:
            raise ValueError("ingestor is finished; create a new one")
        self._samples_offered += 1
        window = window_index(sample.end_time, self.window_seconds)
        if self._next_seal is not None and window < self._next_seal:
            self.late.record(sample, window)
            self.metrics.inc("stream.late_samples")
            return False
        self._pending.setdefault(window, []).append(sample)
        advanced = sample.end_time - self.allowed_lateness_seconds
        if advanced > self._watermark:
            self._watermark = advanced
            self._seal_ready()
        return True

    def offer_all(self, samples: Iterable[SessionSample]) -> "StreamingIngestor":
        for sample in samples:
            self.offer(sample)
        return self

    def finish(self) -> IngestResult:
        """Seal every pending window and return the run's result.

        Idempotent: a second call returns an equivalent result without
        re-sealing anything (offering more samples after it raises).
        """
        if not self._finished:
            if self._pending:
                self._seal_through(max(self._pending))
            metrics = self.dataset.metrics
            metrics.set_gauge("pipeline.rows", len(self.dataset.rows))
            metrics.set_gauge(
                "pipeline.aggregations", len(self.dataset.store)
            )
            metrics.set_gauge(
                "pipeline.groups", len(self.dataset.store.groups())
            )
            self._finished = True
        return IngestResult(
            dataset=self.dataset,
            alerts=self.analyzer.alerts,
            classifications=self.analyzer.classifications(),
            late=self.late,
            windows_sealed=self._windows_sealed,
            windows_empty=self._windows_empty,
            samples_offered=self._samples_offered,
            samples_sealed=self._samples_sealed,
        )

    # ------------------------------------------------------------------ #
    def _seal_ready(self) -> None:
        """Seal every window whose end the watermark has passed."""
        if not self._pending and self._next_seal is None:
            return
        # Highest window w with (w+1)·W <= watermark.
        bound = math.floor(self._watermark / self.window_seconds) - 1
        self._seal_through(bound)

    def _seal_through(self, last_window: int) -> None:
        if self._next_seal is None:
            # The gapless sealed record starts at the earliest buffered
            # window — but only once the watermark actually reaches it;
            # setting it any earlier would misbrand still-admissible
            # earlier windows as late.
            if not self._pending:
                return
            start = min(self._pending)
            if start > last_window:
                return
            self._next_seal = start
        while self._next_seal <= last_window:
            self._seal_one(self._next_seal)
            self._next_seal += 1

    def _seal_one(self, window: int) -> None:
        samples = self._pending.pop(window, [])
        self._windows_sealed += 1
        self.metrics.inc("stream.windows.sealed")
        if not samples:
            self._windows_empty += 1
            self.metrics.inc("stream.windows.empty")
            self.analyzer.on_window_sealed(window, {})
            return
        # Canonical seal order: window membership depends only on end_time,
        # so this sort makes every downstream byte independent of arrival
        # order within the lateness bound (the replay invariant).
        samples.sort(key=lambda s: (s.end_time, s.session_id))
        self._samples_sealed += len(samples)
        self.metrics.inc("stream.samples.sealed", len(samples))
        store = self.dataset.store
        sealed_groups: Dict[UserGroupKey, Aggregation] = {}
        for sample in samples:
            if self.dataset.ingest_one(sample):
                route = sample.route
                if route is not None and route.preference_rank == 0:
                    group = UserGroupKey(
                        pop=sample.pop,
                        prefix=route.prefix,
                        country=sample.client_country,
                    )
                    if group not in sealed_groups:
                        aggregation = store.get(group, 0, window)
                        if aggregation is not None:
                            sealed_groups[group] = aggregation
        if self.out_store is not None:
            from repro.store import DEFAULT_BAND_WINDOWS, append_to_store

            append_to_store(
                self.out_store,
                samples,  # unfiltered: the batch replay re-decides filtering
                band_windows=(
                    self.band_windows
                    if self.band_windows is not None
                    else DEFAULT_BAND_WINDOWS
                ),
                window_seconds=self.window_seconds,
                compress=self.compress,
                metrics=self.metrics,
            )
        self.analyzer.on_window_sealed(window, sealed_groups)
