"""Routing/temporal analyses: Figures 8–10 and Tables 1–2.

All drivers consume a built :class:`~repro.pipeline.dataset.StudyDataset`
(its aggregation store) and report traffic-weighted results, mirroring §5
and §6 of the paper:

- :func:`fig8_degradation` — per-window degradation vs baseline, weighted
  CDF over traffic;
- :func:`fig9_opportunity` — preferred vs best-alternate difference CDFs;
- :func:`fig10_relationship_comparison` — MinRTT_P50 differences by peering
  relationship pair;
- :func:`table1_temporal_classes` — temporal class × continent × threshold
  traffic shares;
- :func:`table2_opportunity_relationships` — opportunity broken down by
  relationship pair, with longer-AS-path and prepending shares.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.aggregation import Aggregation, AggregationStore
from repro.core.classification import (
    GroupClassification,
    TemporalClass,
    classify_group,
)
from repro.core.comparison import (
    WindowVerdict,
    degradation_series,
    opportunity_series,
)
from repro.core.constants import (
    MAX_CI_WIDTH_HDRATIO,
    MAX_CI_WIDTH_MINRTT_MS,
)
from repro.core.records import Relationship, UserGroupKey
from repro.obs import traced
from repro.pipeline.dataset import StudyDataset
from repro.stats.median_ci import compare_medians
from repro.stats.weighted import weighted_ecdf, weighted_fraction_at_most

__all__ = [
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table1Result",
    "Table2Result",
    "fig8_degradation",
    "fig9_opportunity",
    "fig10_relationship_comparison",
    "table1_temporal_classes",
    "table2_opportunity_relationships",
]


def _group_verdicts(
    dataset: StudyDataset, metric: str, kind: str
) -> Dict[UserGroupKey, List[WindowVerdict]]:
    """Degradation or opportunity verdict series for every user group
    (cached on the dataset — several drivers share them)."""
    return dataset.verdicts(metric, kind)


@dataclass
class WeightedDifferenceCdf:
    """Traffic-weighted distribution of per-window differences."""

    differences: List[float] = field(default_factory=list)
    ci_lows: List[float] = field(default_factory=list)
    ci_highs: List[float] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)
    valid_traffic: float = 0.0
    total_traffic: float = 0.0

    def add(self, verdict: WindowVerdict) -> None:
        self.total_traffic += verdict.traffic_bytes
        if not verdict.valid or math.isnan(verdict.difference):
            return
        self.valid_traffic += verdict.traffic_bytes
        self.differences.append(verdict.difference)
        self.ci_lows.append(verdict.ci_low)
        self.ci_highs.append(verdict.ci_high)
        self.weights.append(float(verdict.traffic_bytes))

    @property
    def valid_traffic_fraction(self) -> float:
        if self.total_traffic == 0:
            return 0.0
        return self.valid_traffic / self.total_traffic

    def cdf(self) -> Tuple[List[float], List[float]]:
        return weighted_ecdf(self.differences, self.weights)

    def traffic_fraction_at_least(self, threshold: float, use_ci_low: bool = False) -> float:
        """Traffic share whose difference (or its CI lower bound) >= threshold."""
        values = self.ci_lows if use_ci_low else self.differences
        if not values:
            return 0.0
        return 1.0 - weighted_fraction_at_most(
            values, self.weights, threshold - 1e-12
        )

    def traffic_fraction_at_most(self, threshold: float) -> float:
        if not self.differences:
            return 0.0
        return weighted_fraction_at_most(self.differences, self.weights, threshold)


# --------------------------------------------------------------------- #
# Figure 8 — degradation
# --------------------------------------------------------------------- #
@dataclass
class Fig8Result:
    minrtt: WeightedDifferenceCdf
    hdratio: WeightedDifferenceCdf


@traced("pipeline.fig8")
def fig8_degradation(dataset: StudyDataset) -> Fig8Result:
    """Figure 8: per-window degradation vs each group's baseline, traffic-weighted."""
    result = Fig8Result(WeightedDifferenceCdf(), WeightedDifferenceCdf())
    for metric, acc in (("minrtt", result.minrtt), ("hdratio", result.hdratio)):
        for verdicts in _group_verdicts(dataset, metric, "degradation").values():
            for verdict in verdicts:
                acc.add(verdict)
    return result


# --------------------------------------------------------------------- #
# Figure 9 — opportunity
# --------------------------------------------------------------------- #
@dataclass
class Fig9Result:
    minrtt: WeightedDifferenceCdf
    hdratio: WeightedDifferenceCdf

    def minrtt_within_of_optimal(self, slack_ms: float = 3.0) -> float:
        """Traffic whose preferred MinRTT_P50 is within ``slack`` of the
        best available route (difference <= slack)."""
        return self.minrtt.traffic_fraction_at_most(slack_ms)

    def hdratio_within_of_optimal(self, slack: float = 0.025) -> float:
        return self.hdratio.traffic_fraction_at_most(slack)


@traced("pipeline.fig9")
def fig9_opportunity(dataset: StudyDataset) -> Fig9Result:
    """Figure 9: preferred vs best-alternate route differences, traffic-weighted."""
    result = Fig9Result(WeightedDifferenceCdf(), WeightedDifferenceCdf())
    for metric, acc in (("minrtt", result.minrtt), ("hdratio", result.hdratio)):
        for verdicts in _group_verdicts(dataset, metric, "opportunity").values():
            for verdict in verdicts:
                acc.add(verdict)
    return result


# --------------------------------------------------------------------- #
# Figure 10 — relationship-type comparison
# --------------------------------------------------------------------- #
RELATIONSHIP_PAIRS = (
    ("peering-vs-transit", "peer", "transit"),
    ("transit-vs-transit", "transit", "transit"),
    ("private-vs-public", "private", "public"),
)


def _matches_kind(relationship: Relationship, kind: str) -> bool:
    if kind == "peer":
        return relationship in (Relationship.PRIVATE, Relationship.PUBLIC)
    if kind == "private":
        return relationship is Relationship.PRIVATE
    if kind == "public":
        return relationship is Relationship.PUBLIC
    if kind == "transit":
        return relationship is Relationship.TRANSIT
    raise ValueError(f"unknown relationship kind {kind!r}")


@dataclass
class Fig10Result:
    """Weighted per-pair differences (preferred vs most-preferred alternate).

    ``by_pair`` carries MinRTT_P50 differences oriented as
    (preferred − alternate): negative = preferred faster. ``hd_by_pair``
    carries HDratio_P50 differences oriented as (alternate − preferred):
    positive = alternate better — the §6.3 result the paper describes but
    omits plotting ("concentrated around x = 0 and mostly symmetrical").
    """

    by_pair: Dict[str, WeightedDifferenceCdf]
    hd_by_pair: Dict[str, WeightedDifferenceCdf] = field(default_factory=dict)

    @staticmethod
    def _median_of(acc: WeightedDifferenceCdf) -> float:
        xs, fractions = acc.cdf()
        for x, fraction in zip(xs, fractions):
            if fraction >= 0.5:
                return x
        return xs[-1]

    def median_difference(self, pair: str) -> float:
        return self._median_of(self.by_pair[pair])

    def median_hd_difference(self, pair: str) -> float:
        return self._median_of(self.hd_by_pair[pair])


@traced("pipeline.fig10")
def fig10_relationship_comparison(dataset: StudyDataset) -> Fig10Result:
    """Compare preferred r1-routes against the most-preferred r2 alternate.

    Unlike the opportunity analysis (best-performing alternate), §6.3 picks
    the most *policy-preferred* alternate of the target relationship type.
    Differences are oriented as (alternate − preferred) for MinRTT so that
    positive = preferred is better (left-skew in the paper's plot means
    preferred usually wins); we keep the paper's orientation
    (preferred − alternate): negative = preferred faster.
    """
    store = dataset.store
    result = Fig10Result(
        by_pair={name: WeightedDifferenceCdf() for name, _, _ in RELATIONSHIP_PAIRS},
        hd_by_pair={
            name: WeightedDifferenceCdf() for name, _, _ in RELATIONSHIP_PAIRS
        },
    )
    for group in store.groups():
        for window in store.group_windows(group, route_rank=0):
            preferred = store.get(group, 0, window)
            if preferred is None or preferred.route is None:
                continue
            for name, kind_preferred, kind_alternate in RELATIONSHIP_PAIRS:
                if not _matches_kind(preferred.route.relationship, kind_preferred):
                    continue
                alternate = _first_alternate_of_kind(
                    store, group, window, kind_alternate
                )
                if alternate is None:
                    continue
                comparison = compare_medians(
                    preferred.min_rtts_ms,
                    alternate.min_rtts_ms,
                    max_ci_width=MAX_CI_WIDTH_MINRTT_MS,
                )
                result.by_pair[name].add(
                    WindowVerdict(
                        window=window,
                        difference=comparison.difference,
                        ci_low=comparison.ci_low,
                        ci_high=comparison.ci_high,
                        valid=comparison.valid,
                        traffic_bytes=preferred.traffic_bytes,
                        alternate_rank=alternate.route_rank,
                    )
                )
                hd_comparison = compare_medians(
                    alternate.hdratios,
                    preferred.hdratios,
                    max_ci_width=MAX_CI_WIDTH_HDRATIO,
                )
                result.hd_by_pair[name].add(
                    WindowVerdict(
                        window=window,
                        difference=hd_comparison.difference,
                        ci_low=hd_comparison.ci_low,
                        ci_high=hd_comparison.ci_high,
                        valid=hd_comparison.valid,
                        traffic_bytes=preferred.traffic_bytes,
                        alternate_rank=alternate.route_rank,
                    )
                )
    return result


def _first_alternate_of_kind(
    store: AggregationStore, group: UserGroupKey, window: int, kind: str
) -> Optional[Aggregation]:
    for rank in store.route_ranks(group, window):
        if rank == 0:
            continue
        candidate = store.get(group, rank, window)
        if candidate is None or candidate.route is None:
            continue
        if _matches_kind(candidate.route.relationship, kind):
            return candidate
    return None


# --------------------------------------------------------------------- #
# Table 1 — temporal classes
# --------------------------------------------------------------------- #
DEGRADATION_THRESHOLDS = {
    "minrtt": (5.0, 10.0, 20.0, 50.0),
    "hdratio": (0.05, 0.1, 0.2, 0.5),
}
OPPORTUNITY_THRESHOLDS = {
    "minrtt": (5.0, 10.0),
    "hdratio": (0.05,),
}


@dataclass
class Table1Cell:
    """One (class, continent, threshold) cell: the paper's blue/orange pair."""

    class_traffic: float = 0.0      # total traffic of groups in the class
    event_traffic: float = 0.0      # traffic during the event windows

    def normalized(self, denominator: float) -> Tuple[float, float]:
        if denominator <= 0:
            return 0.0, 0.0
        return self.class_traffic / denominator, self.event_traffic / denominator


@dataclass
class Table1Result:
    """cells[kind][metric][threshold][class][continent] -> Table1Cell.

    ``continent`` is a two-letter code or ``"ALL"``. Use
    :meth:`fractions` for the normalized (blue, orange) pairs.
    """

    cells: Dict[str, Dict[str, Dict[float, Dict[TemporalClass, Dict[str, Table1Cell]]]]]
    total_traffic: Dict[str, float]  # per continent + "ALL"

    def fractions(
        self,
        kind: str,
        metric: str,
        threshold: float,
        temporal_class: TemporalClass,
        continent: str = "ALL",
    ) -> Tuple[float, float]:
        cell = (
            self.cells[kind][metric][threshold]
            .get(temporal_class, {})
            .get(continent, Table1Cell())
        )
        return cell.normalized(self.total_traffic.get(continent, 0.0))


@traced("pipeline.table1")
def table1_temporal_classes(
    dataset: StudyDataset, windows_per_day: Optional[int] = None
) -> Table1Result:
    """Table 1: temporal-class traffic shares per metric, threshold, continent."""
    store = dataset.store
    study_windows = dataset.study_windows
    if windows_per_day is None:
        windows_per_day = dataset.windows_per_day

    # Total classified traffic per continent (denominators).
    group_traffic: Dict[UserGroupKey, float] = {}
    group_continent: Dict[UserGroupKey, str] = {}
    for aggregation in store.all_aggregations():
        if aggregation.route_rank != 0:
            continue
        group_traffic[aggregation.group] = (
            group_traffic.get(aggregation.group, 0.0) + aggregation.traffic_bytes
        )
    continent_of_country = _continent_index(dataset)
    for group in group_traffic:
        group_continent[group] = continent_of_country.get(group.country, "ALL")

    total_traffic: Dict[str, float] = defaultdict(float)
    for group, traffic in group_traffic.items():
        total_traffic["ALL"] += traffic
        total_traffic[group_continent[group]] += traffic

    cells: Dict = {}
    for kind, thresholds_by_metric in (
        ("degradation", DEGRADATION_THRESHOLDS),
        ("opportunity", OPPORTUNITY_THRESHOLDS),
    ):
        cells[kind] = {}
        for metric, thresholds in thresholds_by_metric.items():
            cells[kind][metric] = {}
            verdict_map = _group_verdicts(dataset, metric, kind)
            for threshold in thresholds:
                per_class: Dict[TemporalClass, Dict[str, Table1Cell]] = defaultdict(
                    lambda: defaultdict(Table1Cell)
                )
                for group, verdicts in verdict_map.items():
                    classification = classify_group(
                        verdicts,
                        threshold,
                        study_windows,
                        windows_per_day=windows_per_day,
                    )
                    if not classification.classified:
                        continue
                    continent = group_continent.get(group, "ALL")
                    for scope in ("ALL", continent):
                        cell = per_class[classification.temporal_class][scope]
                        cell.class_traffic += group_traffic.get(group, 0.0)
                        cell.event_traffic += classification.event_traffic_bytes
                cells[kind][metric][threshold] = {
                    cls: dict(by_continent) for cls, by_continent in per_class.items()
                }
    return Table1Result(cells=cells, total_traffic=dict(total_traffic))


def _continent_index(dataset: StudyDataset) -> Dict[str, str]:
    """country -> continent mapping for the study's user groups.

    User-group keys carry countries, not continents; the static table below
    covers every country the synthetic universe (and any realistic subset
    of ISO codes) uses. Unknown countries fall back to ``"ALL"`` upstream.
    """
    return dict(_STATIC_COUNTRY_CONTINENT)


#: ISO country -> continent for every country the synthetic universe uses.
_STATIC_COUNTRY_CONTINENT = {
    "NL": "EU", "GB": "EU", "FR": "EU", "DE": "EU", "PL": "EU", "TR": "EU",
    "UA": "EU", "ES": "EU", "SE": "EU", "IT": "EU",
    "US": "NA", "MX": "NA", "CA": "NA",
    "IN": "AS", "ID": "AS", "PH": "AS", "TH": "AS", "JP": "AS", "VN": "AS",
    "BD": "AS", "PK": "AS", "SG": "AS", "HK": "AS",
    "BR": "SA", "AR": "SA", "CO": "SA", "PE": "SA", "CL": "SA",
    "NG": "AF", "KE": "AF", "ZA": "AF", "EG": "AF", "GH": "AF",
    "AU": "OC", "NZ": "OC",
}


# --------------------------------------------------------------------- #
# Table 2 — opportunity by relationship pair
# --------------------------------------------------------------------- #
TABLE2_ROWS = (
    "private->private",
    "private->transit",
    "public->public",
    "public->transit",
    "transit->transit",
    "others",
)


@dataclass
class Table2Row:
    event_traffic: float = 0.0
    longer_path_traffic: float = 0.0
    prepended_traffic: float = 0.0


@dataclass
class Table2Result:
    """Opportunity traffic by (preferred, alternate) relationship pair."""

    rows: Dict[str, Dict[str, Table2Row]]  # metric -> row name -> Table2Row
    total_traffic: float

    def absolute(self, metric: str, row: str) -> float:
        if self.total_traffic <= 0:
            return 0.0
        return self.rows[metric][row].event_traffic / self.total_traffic

    def relative(self, metric: str, row: str) -> float:
        total = sum(r.event_traffic for r in self.rows[metric].values())
        if total <= 0:
            return 0.0
        return self.rows[metric][row].event_traffic / total

    def longer_share(self, metric: str, row: str) -> float:
        cell = self.rows[metric][row]
        if cell.event_traffic <= 0:
            return 0.0
        return cell.longer_path_traffic / cell.event_traffic


def _pair_name(preferred: Relationship, alternate: Relationship) -> str:
    mapping = {
        (Relationship.PRIVATE, Relationship.PRIVATE): "private->private",
        (Relationship.PRIVATE, Relationship.TRANSIT): "private->transit",
        (Relationship.PUBLIC, Relationship.PUBLIC): "public->public",
        (Relationship.PUBLIC, Relationship.TRANSIT): "public->transit",
        (Relationship.TRANSIT, Relationship.TRANSIT): "transit->transit",
    }
    return mapping.get((preferred, alternate), "others")


@traced("pipeline.table2")
def table2_opportunity_relationships(
    dataset: StudyDataset,
    minrtt_threshold: float = 5.0,
    hdratio_threshold: float = 0.05,
) -> Table2Result:
    """Table 2: CI-confirmed opportunity broken down by relationship pair."""
    store = dataset.store
    rows = {
        "minrtt": {name: Table2Row() for name in TABLE2_ROWS},
        "hdratio": {name: Table2Row() for name in TABLE2_ROWS},
    }
    total_traffic = sum(
        aggregation.traffic_bytes
        for aggregation in store.all_aggregations()
        if aggregation.route_rank == 0
    )
    for metric, threshold in (
        ("minrtt", minrtt_threshold),
        ("hdratio", hdratio_threshold),
    ):
        for group, verdicts in _group_verdicts(dataset, metric, "opportunity").items():
            for verdict in verdicts:
                if not verdict.event_at(threshold):
                    continue
                preferred = store.get(group, 0, verdict.window)
                alternate = (
                    store.get(group, verdict.alternate_rank, verdict.window)
                    if verdict.alternate_rank is not None
                    else None
                )
                if (
                    preferred is None
                    or alternate is None
                    or preferred.route is None
                    or alternate.route is None
                ):
                    continue
                name = _pair_name(
                    preferred.route.relationship, alternate.route.relationship
                )
                cell = rows[metric][name]
                cell.event_traffic += verdict.traffic_bytes
                if alternate.route.as_path_length > preferred.route.as_path_length:
                    cell.longer_path_traffic += verdict.traffic_bytes
                if alternate.route.prepended and not preferred.route.prepended:
                    cell.prepended_traffic += verdict.traffic_bytes
    return Table2Result(rows=rows, total_traffic=float(total_traffic))
