"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's figures and tables
report; these helpers keep the formatting in one place so bench output and
``EXPERIMENTS.md`` stay consistent.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "format_cdf_checkpoints",
    "format_metric",
    "format_percent",
    "format_table",
]

#: Rendered in place of a statistic that does not exist (zero-session
#: aggregation, empty population split). The absence of data is reported,
#: never raised through the renderer.
NOT_AVAILABLE = "n/a"


def format_percent(value: Optional[float], digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.839 -> \"83.9%\").

    ``None``/NaN (an empty population) renders as ``n/a``.
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return NOT_AVAILABLE
    return f"{100.0 * value:.{digits}f}%"


def format_metric(
    value: Optional[float], spec: str = ".1f", suffix: str = ""
) -> str:
    """Render one statistic, or ``n/a`` when it does not exist.

    ``spec`` is a format-spec applied to non-None values; ``suffix`` (for
    units, e.g. ``" ms"``) is appended only when there is a value.
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return NOT_AVAILABLE
    return f"{value:{spec}}{suffix}"


def format_cdf_checkpoints(
    label: str,
    checkpoints: Sequence[Tuple[str, float]],
) -> str:
    """Render a named list of (description, value) lines under a header."""
    lines = [label]
    width = max((len(name) for name, _ in checkpoints), default=0)
    for name, value in checkpoints:
        lines.append(f"  {name:<{width}}  {value:.4g}")
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
